package rdbms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
)

// LSN is a log sequence number: the logical byte offset of a record in
// the log. LSNs are monotonic across the whole life of a database — the
// WAL manifest records the logical offset at which each segment file
// starts, and truncating the log's prefix at a checkpoint deletes whole
// segments instead of restarting LSNs at zero. Page LSNs stay
// comparable with log records forever, which is what makes recovery's
// redo gating (pageLSN < rec.LSN) sound.
type LSN uint64

// TxnID identifies a transaction.
type TxnID uint64

// LogKind enumerates WAL record types.
type LogKind uint8

const (
	LogBegin LogKind = iota + 1
	LogCommit
	LogAbort
	LogInsert
	LogDelete
	LogUpdate
	// LogCheckpointBegin and LogCheckpointEnd bracket a fuzzy checkpoint:
	// Begin carries the dirty-page table and active-transaction list in
	// Data (diagnostics and property tests; recovery's replay origin is
	// the catalog's checkpointLSN, not these records), End marks that
	// every step up to the catalog write completed.
	LogCheckpointBegin
	LogCheckpointEnd
	// LogBatchInsert and LogBatchDelete are the COPY-style bulk-load
	// records: one record covers a whole chunk of rows, carried in Data as
	// a count-prefixed sequence of (RID, encoded tuple) pairs (see
	// encodeBatchRows). BatchInsert rows are after-images, BatchDelete rows
	// before-images (the compensation record a failed batch logs while
	// rolling back). Recovery normalizes both into per-row Insert/Delete
	// records stamped with the batch record's LSN (expandBatchRecords), so
	// redo gating, undo, and the derived-state delta walk treat a batch
	// exactly like the equivalent row-at-a-time sequence.
	LogBatchInsert
	LogBatchDelete
)

func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogInsert:
		return "INSERT"
	case LogDelete:
		return "DELETE"
	case LogUpdate:
		return "UPDATE"
	case LogCheckpointBegin:
		return "CKPT-BEGIN"
	case LogCheckpointEnd:
		return "CKPT-END"
	case LogBatchInsert:
		return "BATCH-INSERT"
	case LogBatchDelete:
		return "BATCH-DELETE"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one WAL entry. Insert carries After; Delete carries Before;
// Update carries both. Table names the affected table. Data is an opaque
// payload used by checkpoint records (the serialized dirty-page table).
type LogRecord struct {
	LSN    LSN
	Kind   LogKind
	Txn    TxnID
	Table  string
	Row    RID
	Before Tuple
	After  Tuple
	Data   []byte
}

func encodeLogRecord(r *LogRecord) []byte {
	var body []byte
	body = append(body, byte(r.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(r.Txn))
	body = append(body, tmp[:]...)
	body = appendString(body, r.Table)
	var rid [8]byte
	binary.LittleEndian.PutUint32(rid[0:4], uint32(r.Row.Page))
	binary.LittleEndian.PutUint16(rid[4:6], r.Row.Slot)
	body = append(body, rid[:6]...)
	body = appendBytes(body, encodeMaybeTuple(r.Before))
	body = appendBytes(body, encodeMaybeTuple(r.After))
	body = appendBytes(body, r.Data)
	// Frame: len + crc + body.
	out := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeLogRecord(body []byte) (*LogRecord, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("rdbms: short log body")
	}
	r := &LogRecord{Kind: LogKind(body[0])}
	r.Txn = TxnID(binary.LittleEndian.Uint64(body[1:9]))
	off := 9
	tbl, n, err := readString(body[off:])
	if err != nil {
		return nil, err
	}
	r.Table = tbl
	off += n
	if len(body) < off+6 {
		return nil, fmt.Errorf("rdbms: short log rid")
	}
	r.Row.Page = PageID(binary.LittleEndian.Uint32(body[off : off+4]))
	r.Row.Slot = binary.LittleEndian.Uint16(body[off+4 : off+6])
	off += 6
	beforeRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	afterRaw, n, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	off += n
	dataRaw, _, err := readBytes(body[off:])
	if err != nil {
		return nil, err
	}
	if len(dataRaw) > 0 {
		r.Data = append([]byte(nil), dataRaw...)
	}
	if r.Before, err = decodeMaybeTuple(beforeRaw); err != nil {
		return nil, err
	}
	if r.After, err = decodeMaybeTuple(afterRaw); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeMaybeTuple(t Tuple) []byte {
	if t == nil {
		return nil
	}
	return EncodeTuple(t)
}

func decodeMaybeTuple(b []byte) (Tuple, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return DecodeTuple(b)
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	b, n, err := readBytes(buf)
	return string(b), n, err
}

func appendBytes(buf, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf = append(buf, tmp[:]...)
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("rdbms: short length prefix")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return nil, 0, fmt.Errorf("rdbms: short payload")
	}
	return buf[4 : 4+n], 4 + n, nil
}

// ErrWALPoisoned is returned to committers whose flush target was in
// flight when a simulated crash (CrashSignal panic) interrupted the
// group-commit leader: the log's durable boundary is unknowable from
// inside the dying process, so the WAL refuses all further work. Only
// reopening the store (a fresh WAL) resolves the in-doubt commits.
var ErrWALPoisoned = errors.New("rdbms: wal unusable after crash during flush")

// DefaultGroupCommitWindow is the group-commit leader's straggler-wait
// budget in scheduler-yield iterations when Options does not override it.
const DefaultGroupCommitWindow = 512

// DefaultWALSegmentBytes is the rotation threshold for WAL segment
// files when Options does not override it: once the active segment's
// flushed size reaches this, the next flush seals it and opens a fresh
// segment. Small enough that a checkpoint usually finds whole prefix
// segments to delete, large enough that rotation (one manifest swap +
// directory sync) is rare next to commit fsyncs.
const DefaultWALSegmentBytes = 1 << 20

// walSegment is one log segment: a device whose byte 0 carries LSN
// start. Segments are append-only and immutable once sealed (a newer
// segment exists); the last segment is the active append target.
type walSegment struct {
	seq   uint64
	start LSN
	dev   Device
}

// WAL is an append-only write-ahead log over a WALStore — a chain of
// fixed-target-size segment files described by a manifest. Append
// buffers the record; Flush forces buffered records to stable storage
// (device write + sync). Commit durability is achieved by flushing
// before acknowledging.
//
// Segmentation (PR10) is what makes log-space reclamation O(1) and
// long-transaction-proof: TruncateTo deletes whole prefix segments and
// swaps the manifest, never copying surviving records, so a pinned live
// tail — a long-running transaction, an old open View — delays
// reclamation of at most the segments it actually occupies. The old
// single-file copy-down protocol (double-slot header, COPYING state,
// terminator frames) is retired; crash safety now rests on the
// manifest swap being atomic and directory metadata committing in
// order (see WALStore).
//
// Flushing uses a group-commit sequencer (leader/follower): the first
// committer to need durability becomes the leader, takes ownership of
// every buffered record — its own and any that concurrent committers
// appended before it won the role — and performs one device write + sync
// for the whole batch outside the WAL lock. Committers arriving while
// that I/O is in flight append their records and wait; when the leader
// finishes, one of them becomes the next leader and flushes the entire
// accumulated batch with a single fsync. A lone committer pays exactly
// the old one-fsync latency; N concurrent committers pay ~2 fsyncs total
// (the in-flight one plus one batch), amortizing the dominant cost of
// durable commit.
//
// A whole flush batch always lands in one segment: rotation happens
// between flushes (after a successful sync, while the leader still
// holds the flush role), so a segment may overshoot its target by the
// final batch's size but the logical-to-physical mapping stays a single
// subtraction.
//
// Opening a WAL reads the manifest for the segment chain, removes
// orphan segments a crash left unnamed, then scans the active (last)
// segment for a torn tail — a frame whose length prefix overruns the
// device or whose checksum fails, left by a crash mid-flush — and
// truncates it back to the last whole record, so post-crash appends
// never land after garbage bytes that a recovery scan would refuse to
// read past. Sealed segments need no scan: they were synced to their
// full extent before the rotation that sealed them became durable.
type WAL struct {
	mu      sync.Mutex
	cond    *sync.Cond    // signals flush completion to waiting committers
	buf     []byte        // unflushed tail, starts at LSN `flushed`
	base    LSN           // logical LSN of the oldest byte still on the store
	flushed LSN           // bytes durably stored (logical)
	next    LSN           // next LSN to assign (= flushed + len(inflight) + len(buf))
	nextA   atomic.Uint64 // lock-free mirror of next (buffer-pool recLSN capture)

	store     WALStore
	segs      []walSegment // ascending by start; last is the active append target
	nextSeq   uint64       // sequence number the next rotation will use
	segTarget int64        // active-segment size that triggers rotation

	flushing   bool   // a leader's write+sync is in flight (outside mu)
	poisoned   bool   // a crash panic escaped mid-flush; see ErrWALPoisoned
	syncs      int64  // completed device syncs (group-commit diagnostics)
	spare      []byte // a flushed batch's buffer, recycled for appends
	committers int    // commits between AppendEnd and durable: potential batch-mates

	window      int   // straggler-wait budget (yields); 0 = solo-commit
	windowOpens int64 // times a leader opened the group window (tests)
	rotations   int64 // completed segment rotations (tests and diagnostics)
}

// NewMemWAL returns a WAL over an in-memory store; Flush makes records
// durable against the simulated crash model (MemWALStore.Crash keeps
// only synced bytes and a prefix of unsynced directory metadata).
func NewMemWAL() *WAL {
	w, err := NewWALOn(NewMemWALStore())
	if err != nil {
		// A fresh MemWALStore cannot fail to open.
		panic(err)
	}
	return w
}

// OpenFileWAL opens or creates a directory-backed WAL at dir.
func OpenFileWAL(dir string) (*WAL, error) {
	store, err := OpenFileWALStore(dir)
	if err != nil {
		return nil, err
	}
	w, err := NewWALOn(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return w, nil
}

// NewWALOn opens a WAL over store: reads (or initializes) the manifest,
// garbage-collects orphan segments, and truncates any torn tail in the
// active segment left by a crash.
func NewWALOn(store WALStore) (*WAL, error) {
	w := &WAL{store: store, window: DefaultGroupCommitWindow, segTarget: DefaultWALSegmentBytes}
	w.cond = sync.NewCond(&w.mu)
	raw, err := store.ReadManifest()
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return w, w.initFresh()
	}
	entries, err := decodeWALManifest(raw)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("rdbms: wal manifest names no segments")
	}
	present, err := store.Segments()
	if err != nil {
		return nil, err
	}
	presentSet := make(map[uint64]bool, len(present))
	for _, seq := range present {
		presentSet[seq] = true
	}
	named := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if !presentSet[e.seq] {
			return nil, fmt.Errorf("rdbms: wal manifest names missing segment %d", e.seq)
		}
		named[e.seq] = true
	}
	// Orphans — segments on the store the manifest does not name — are
	// either a rotation whose manifest swap never became durable (they
	// hold no acknowledged record) or a truncation's dropped prefix whose
	// file removal was interrupted (their records are below the durable
	// catalog's replay origin). Both are garbage; collect them.
	gc := false
	for _, seq := range present {
		if !named[seq] {
			if err := store.RemoveSegment(seq); err != nil {
				return nil, err
			}
			gc = true
		}
	}
	for i, e := range entries {
		dev, err := store.OpenSegment(e.seq)
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, walSegment{seq: e.seq, start: e.start, dev: dev})
		if i+1 < len(entries) {
			// Sealed segment: rotation became durable only after the
			// segment was synced to its full extent, so it must span
			// exactly up to its successor's start.
			want := int64(entries[i+1].start - e.start)
			size, err := dev.Size()
			if err != nil {
				return nil, err
			}
			if size < want {
				return nil, fmt.Errorf("rdbms: wal segment %d holds %d bytes, want %d", e.seq, size, want)
			}
		}
	}
	w.base = entries[0].start
	w.nextSeq = entries[len(entries)-1].seq + 1
	// Torn-tail scan of the active segment only.
	active := w.segs[len(w.segs)-1]
	size, err := active.dev.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := active.dev.ReadAt(data, 0); err != nil {
			return nil, err
		}
	}
	end := int64(walkLogFrames(data, 0, nil))
	if end < size {
		if err := active.dev.Truncate(end); err != nil {
			return nil, err
		}
	}
	if gc {
		if err := store.SyncDir(); err != nil {
			return nil, err
		}
	}
	w.flushed = active.start + LSN(end)
	w.next = w.flushed
	w.nextA.Store(uint64(w.next))
	return w, nil
}

// initFresh sets up a brand-new log: one empty segment starting at LSN 0
// and a manifest naming it. Stray segment files (a previous fresh init
// that crashed before its manifest became durable — so nothing was ever
// acknowledged) are removed first.
func (w *WAL) initFresh() error {
	present, err := w.store.Segments()
	if err != nil {
		return err
	}
	for _, seq := range present {
		if err := w.store.RemoveSegment(seq); err != nil {
			return err
		}
	}
	dev, err := w.store.OpenSegment(1)
	if err != nil {
		return err
	}
	if err := w.store.WriteManifest(encodeWALManifest([]walManifestEntry{{seq: 1, start: 0}})); err != nil {
		return err
	}
	if err := w.store.SyncDir(); err != nil {
		return err
	}
	w.segs = []walSegment{{seq: 1, start: 0, dev: dev}}
	w.nextSeq = 2
	return nil
}

// walkLogFrames iterates the whole, checksum-clean frames in data
// starting at off, calling fn (when non-nil; a false return stops early)
// with each frame's offset and body, and returns the offset where the
// last valid frame ends. It is the single definition of the torn-tail
// boundary: open-time truncation and Records both use it, so the bytes
// truncation keeps are exactly the bytes a recovery scan will read.
func walkLogFrames(data []byte, off int, fn func(off int, body []byte) bool) int {
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+8+n > len(data) || crc32.ChecksumIEEE(data[off+8:off+8+n]) != want {
			break
		}
		if fn != nil && !fn(off, data[off+8:off+8+n]) {
			return off
		}
		off += 8 + n
	}
	return off
}

// Append adds a record, assigning and returning its LSN.
func (w *WAL) Append(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	return r.LSN
}

// AppendEnd adds a commit record and returns the LSN just past it — the
// FlushCommit target that makes the record durable. Commit uses it so
// that each committer waits only for the batch containing its own
// record, not for records appended after it. The caller is counted as a
// committer in flight until its FlushCommit returns; that count is what
// decides whether a flush leader opens the group window.
func (w *WAL) AppendEnd(r *LogRecord) LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(r)
	w.committers++
	return w.next
}

func (w *WAL) appendLocked(r *LogRecord) {
	r.LSN = w.next
	enc := encodeLogRecord(r)
	if w.buf == nil && w.spare != nil {
		w.buf, w.spare = w.spare[:0], nil
	}
	w.buf = append(w.buf, enc...)
	w.next += LSN(len(enc))
	w.nextA.Store(uint64(w.next))
}

// Flush forces every record appended so far to stable storage.
func (w *WAL) Flush() error {
	w.mu.Lock()
	return w.flushToLocked(w.next, false)
}

// FlushTo forces the log up to target to stable storage without opening
// the group-commit window. The buffer pool uses it before writing a dirty
// page back: flushing to the page's LSN (plus one byte, so the record
// starting there is covered whole) is the precise WAL rule — later
// records need not be forced. Targets beyond the append horizon clamp to
// it.
func (w *WAL) FlushTo(target LSN) error {
	w.mu.Lock()
	return w.flushToLocked(target, false)
}

// NextLSN returns the next LSN the WAL will assign, without taking the
// WAL lock (an atomic mirror). The buffer pool samples it at pin time to
// derive a conservative recLSN for pages that pin dirties.
func (w *WAL) NextLSN() LSN { return LSN(w.nextA.Load()) }

// FlushCommit forces the log up to target (an AppendEnd result) to
// stable storage, participating in group commit: if another committer's
// flush is already in flight, the caller waits for it (and, if that
// batch did not cover target, one waiter becomes the next leader and
// flushes everything accumulated since — one fsync for the whole
// group). When more than one committer is in flight, the leader briefly
// yields before capturing the batch, so stragglers a few microseconds
// behind join this fsync instead of founding the next one; a lone
// committer — regardless of how many idle transactions are open —
// flushes immediately at single-commit latency.
func (w *WAL) FlushCommit(target LSN) error {
	w.mu.Lock()
	err := w.flushToLocked(target, true)
	w.mu.Lock()
	w.committers--
	w.mu.Unlock()
	return err
}

// flushToLocked implements the leader/follower protocol. The caller must
// hold w.mu; it is released on return. window permits the leader's
// group wait, which still only happens when other committers are in
// flight (w.committers > 1).
func (w *WAL) flushToLocked(target LSN, window bool) error {
	if target > w.next {
		target = w.next
	}
	for {
		if w.poisoned {
			w.mu.Unlock()
			return ErrWALPoisoned
		}
		if w.flushed >= target {
			w.mu.Unlock()
			return nil
		}
		if !w.flushing {
			break // become the leader
		}
		w.cond.Wait()
	}
	// Leader: flushing blocks rival leaders, but the buffer stays open —
	// the batch is captured only after the (optional) group window, so
	// everything appended up to that moment rides this fsync.
	w.flushing = true
	window = window && w.committers > 1 && w.window > 0
	if window {
		w.windowOpens++
	}
	w.mu.Unlock()
	if window {
		w.awaitStragglers()
	}
	w.mu.Lock()
	chunk := w.buf
	base := w.flushed
	// The active segment is stable for the whole leader I/O: only a
	// leader rotates, and TruncateTo quiesces leaders and never touches
	// the last segment.
	active := w.segs[len(w.segs)-1]
	w.buf = nil
	w.mu.Unlock()

	var err error
	completed := false
	synced := false
	poisonRotate := false
	defer func() {
		w.mu.Lock()
		w.flushing = false
		if synced {
			w.syncs++
		}
		switch {
		case !completed:
			// A panic (the fault harness's simulated crash) interrupted the
			// I/O: the durable boundary is unknowable, so poison the WAL; every
			// waiter and future committer gets ErrWALPoisoned and the
			// in-doubt records are resolved by post-crash recovery.
			w.poisoned = true
		case err != nil && !synced:
			// The device reported the failure cleanly before the batch was
			// durable: restore the batch at the front of the buffer so a
			// later flush (or a follower retrying as leader) rewrites the
			// same bytes at the same offsets. flushed is unchanged —
			// nothing was acknowledged.
			w.buf = append(chunk, w.buf...)
		default:
			w.flushed = base + LSN(len(chunk))
			if w.spare == nil || cap(chunk) > cap(w.spare) {
				w.spare = chunk[:0] // recycle the batch buffer
			}
			if poisonRotate {
				// The rotation's manifest swap failed after it may have been
				// announced: where future durable bytes belong is ambiguous,
				// so no further append may be acknowledged (see rotate).
				w.poisoned = true
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}()
	if len(chunk) > 0 {
		if _, werr := active.dev.WriteAt(chunk, int64(base-active.start)); werr != nil {
			err = werr
		} else if serr := active.dev.Sync(); serr != nil {
			err = serr
		} else {
			synced = true
		}
	}
	if err == nil && int64(base+LSN(len(chunk))-active.start) >= w.segTarget {
		// Seal the active segment and open the next one. The batch is
		// already durable, so a rotation error must not claw it back:
		// rotate reports whether the failure leaves the manifest state
		// ambiguous (poison) or the rotation simply didn't happen (the
		// active segment keeps growing past its target — retried after
		// the next flush).
		poisonRotate, err = w.rotate(base + LSN(len(chunk)))
	}
	completed = true
	// On success the batch covered target (the chunk held everything
	// buffered at leader election, and target predates it).
	return err
}

// rotate seals the active segment at end and installs a fresh one: open
// the next segment device, swap in a manifest naming it with start LSN
// end, sync the directory, then adopt it as the append target. Called
// only by a flush leader (w.flushing held), so w.segs is stable.
//
// Error contract: a failure before the manifest swap leaves the old
// manifest authoritative — the rotation is simply skipped (no poison, the
// oversized active segment keeps working). A failure at or after the
// swap is poisonous: the new manifest declares that no acknowledged byte
// may land in the old segment past end, but whether that declaration is
// (or will become) durable is unknowable, so continuing to append
// anywhere risks either losing acked records (they landed in a segment a
// durable manifest never names) or truncating them (they landed past a
// sealed segment's recorded end).
func (w *WAL) rotate(end LSN) (poison bool, err error) {
	dev, err := w.store.OpenSegment(w.nextSeq)
	if err != nil {
		return false, err
	}
	entries := make([]walManifestEntry, 0, len(w.segs)+1)
	for _, s := range w.segs {
		entries = append(entries, walManifestEntry{seq: s.seq, start: s.start})
	}
	entries = append(entries, walManifestEntry{seq: w.nextSeq, start: end})
	if err := w.store.WriteManifest(encodeWALManifest(entries)); err != nil {
		return true, err
	}
	if err := w.store.SyncDir(); err != nil {
		return true, err
	}
	w.mu.Lock()
	w.segs = append(w.segs, walSegment{seq: w.nextSeq, start: end, dev: dev})
	w.nextSeq++
	w.rotations++
	w.mu.Unlock()
	return false, nil
}

// awaitStragglers is the group-commit window: a bounded busy-yield that
// ends as soon as appends quiesce (two consecutive checks with no growth)
// or the iteration budget (Options.GroupCommitWindow, default
// DefaultGroupCommitWindow) runs out. Concurrent committers run in real
// time on other cores during the yield, so a few microseconds is enough
// for a committer already past its WAL append to land in this batch; the
// cost is orders of magnitude below the fsync it saves. The leader only
// opens the window when other committers are in flight (commit records
// appended but not yet durable) and the budget is nonzero — a zero
// budget degenerates to solo-commit flushing: each leader captures only
// what is already buffered.
func (w *WAL) awaitStragglers() {
	last := w.peekNext()
	stable := 0
	for i := 0; i < w.window && stable < 2; i++ {
		runtime.Gosched()
		if i%16 == 15 {
			cur := w.peekNext()
			if cur == last {
				stable++
			} else {
				stable = 0
				last = cur
			}
		}
	}
}

func (w *WAL) peekNext() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Syncs returns the number of completed WAL device syncs — the measure of
// how well group commit amortizes fsyncs across concurrent committers.
func (w *WAL) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Rotations returns the number of completed segment rotations.
func (w *WAL) Rotations() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotations
}

// SegmentCount returns how many segments the log currently spans.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// SetSegmentTarget overrides the rotation threshold (tests use small
// targets to force rotation; Options.WALSegmentBytes is the public
// knob).
func (w *WAL) SetSegmentTarget(bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if bytes > 0 {
		w.segTarget = bytes
	}
}

// DiskBytes sums the current sizes of every segment on the store — the
// log's on-disk footprint (the space-bound the long-transaction suite
// asserts on).
func (w *WAL) DiskBytes() (int64, error) {
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	w.mu.Unlock()
	var total int64
	for _, s := range segs {
		n, err := s.dev.Size()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// quiesceLocked waits until no flush is in flight. Callers that mutate
// flushed/next/buf/segs wholesale (TruncateTo, DropUnflushed) must not
// interleave with a leader's I/O.
func (w *WAL) quiesceLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// TruncateTo discards the durable log before horizon by deleting whole
// prefix segments — O(1) per segment, no record ever moves. A
// checkpoint calls it with the min(recLSN, first LSN of any active
// transaction) horizon: everything before it is redundant (durably in
// the data pages and owned by resolved transactions), everything at or
// after it must survive for redo and undo.
//
// Only segments that end at or before the horizon are deleted, so the
// log's base advances in segment-sized steps; a long-running
// transaction pinning an old horizon delays reclamation of exactly the
// segments its records occupy — never of the unbounded whole log, which
// is what the old copy-down protocol degenerated to (it skipped
// truncation entirely whenever the live tail outweighed the prefix).
//
// Protocol, crash-safe against the caller's catalog (which must already
// record horizon as the replay origin BEFORE TruncateTo runs): swap in
// a manifest naming only the surviving segments, sync the directory,
// then remove the dropped segment files and sync again. A crash after
// the swap leaves orphan files that open-time GC removes; a crash
// before it leaves the old manifest over intact files — recovery reads
// from the catalog's horizon either way. Clean errors are non-poisoning:
// the in-memory chain only adopts the new shape after the swap is
// durable, and until then both manifests describe a consistent log.
func (w *WAL) TruncateTo(horizon LSN) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if w.poisoned {
		return ErrWALPoisoned
	}
	if horizon > w.flushed {
		horizon = w.flushed
	}
	drop := 0
	for drop < len(w.segs)-1 && w.segs[drop+1].start <= horizon {
		drop++
	}
	if drop == 0 {
		return nil
	}
	survivors := w.segs[drop:]
	entries := make([]walManifestEntry, 0, len(survivors))
	for _, s := range survivors {
		entries = append(entries, walManifestEntry{seq: s.seq, start: s.start})
	}
	if err := w.store.WriteManifest(encodeWALManifest(entries)); err != nil {
		return err
	}
	if err := w.store.SyncDir(); err != nil {
		return err
	}
	dropped := append([]walSegment(nil), w.segs[:drop]...)
	w.segs = append([]walSegment(nil), survivors...)
	w.base = w.segs[0].start
	for _, s := range dropped {
		s.dev.Close()
		if err := w.store.RemoveSegment(s.seq); err != nil {
			// The manifest no longer names the segment, so a lingering
			// file is an orphan the next open collects; space reclaim is
			// merely delayed.
			return nil
		}
	}
	// Removal durability is best-effort for the same reason: orphans are
	// collected at open.
	w.store.SyncDir()
	return nil
}

// Base returns the logical LSN of the log's oldest byte still on the
// store — the start of the first segment (diagnostics and tests).
func (w *WAL) Base() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// Empty reports whether the log holds nothing at all: no durable record
// (flushed == base) and no buffered append.
func (w *WAL) Empty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed == w.base && w.next == w.flushed
}

// EmptySince reports whether no record — durable or buffered — exists
// at or after lsn. A checkpoint whose previous horizon satisfies this
// has nothing new to make durable: segment-granular truncation keeps
// already-checkpointed bytes of the active segment on disk (deleting
// only whole sealed segments), so "the log's tail since the last
// checkpoint is empty" is the no-op test, not "the log is physically
// empty".
func (w *WAL) EmptySince(lsn LSN) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed <= lsn && w.next == w.flushed
}

// FlushedLSN returns the durable boundary.
func (w *WAL) FlushedLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// DropUnflushed discards buffered records, simulating a crash where only
// flushed bytes survive. Test/experiment hook.
func (w *WAL) DropUnflushed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	w.next = w.flushed
	w.nextA.Store(uint64(w.next))
	w.buf = w.buf[:0]
}

// Records reads all durable records starting at from (clamped to the
// log's base), walking the segment chain in order. Records with bad
// checksums or truncated frames terminate the scan (torn tail).
func (w *WAL) Records(from LSN) ([]*LogRecord, error) {
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	flushed := w.flushed
	w.mu.Unlock()

	if from < segs[0].start {
		from = segs[0].start
	}
	var out []*LogRecord
	var decodeErr error
	for i, s := range segs {
		end := flushed
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if end <= from || end == s.start {
			continue
		}
		// Bytes below `flushed` are stable: appends only land at or past
		// it, so this read cannot race the flush leader's WriteAt.
		data := make([]byte, end-s.start)
		if _, err := s.dev.ReadAt(data, 0); err != nil {
			return nil, err
		}
		off := 0
		if from > s.start {
			off = int(from - s.start)
		}
		walkLogFrames(data, off, func(off int, body []byte) bool {
			r, err := decodeLogRecord(body)
			if err != nil {
				decodeErr = err
				return false
			}
			r.LSN = s.start + LSN(off)
			out = append(out, r)
			return true
		})
		if decodeErr != nil {
			return nil, decodeErr
		}
	}
	return out, nil
}

// Close releases the segment devices and the underlying store.
func (w *WAL) Close() error {
	w.mu.Lock()
	segs := w.segs
	w.mu.Unlock()
	for _, s := range segs {
		s.dev.Close()
	}
	return w.store.Close()
}
