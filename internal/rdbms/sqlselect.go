package rdbms

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// readSource abstracts the row access a SELECT needs, so the same
// executor serves both strict-2PL transactions (Txn: shared locks,
// current state) and MVCC snapshots (Snap: no locks, state at the
// pinned LSN). Implementations promise that fetch resolves a RID to the
// tuple THIS source considers current — the index paths rely on it when
// re-verifying candidates.
type readSource interface {
	table(name string) (*Table, error)
	ctxErr() error
	Scan(table string, fn func(rid RID, t Tuple) bool) error
	IndexLookup(table, column string, key Value) ([]RID, error)
	IndexRange(table, column string, lo, hi *Value, fn func(key Value, rid RID) bool) error
	// fetch reads the source-current tuple at rid (live=false for rows
	// this source cannot see).
	fetch(t *Table, table string, rid RID) (Tuple, bool, error)
	// orderRows serves a chooseOrderPath plan: rows already in ORDER BY
	// order. ok=false declines (the executor falls back to sort paths).
	orderRows(s SelectStmt, t *Table, op *orderPath, b *binding, stopAfter int) ([]Tuple, bool, error)
}

// fetch implements readSource for Txn: plain heap read — callers hold
// the table lock taken by the index probe that produced rid.
func (tx *Txn) fetch(t *Table, _ string, rid RID) (Tuple, bool, error) {
	return t.Heap.Get(rid)
}

// orderRows implements readSource for Txn via the index-order scan.
func (tx *Txn) orderRows(s SelectStmt, t *Table, op *orderPath, b *binding, stopAfter int) ([]Tuple, bool, error) {
	rows, err := tx.indexOrderRows(s, t, op, b, stopAfter)
	return rows, true, err
}

// execSelect runs a SELECT inside a strict-2PL transaction.
func (tx *Txn) execSelect(s SelectStmt) (*ResultSet, error) {
	return execSelectSrc(tx, s)
}

// execSelectSrc runs a SELECT over any readSource: access-path selection
// (index vs sequential scan), optional hash join, filtering,
// grouping/aggregation, projection, DISTINCT, ORDER BY, LIMIT/OFFSET.
//
// The base access is streaming: for single-table queries the WHERE clause
// is evaluated inside the scan callback, so tuples that fail the filter
// are dropped before they are ever retained, and unordered
// LIMIT/OFFSET queries stop scanning as soon as enough rows qualify.
func execSelectSrc(src readSource, s SelectStmt) (*ResultSet, error) {
	t, err := src.table(s.From)
	if err != nil {
		return nil, err
	}
	fromName := s.FromAlias
	if fromName == "" {
		fromName = s.From
	}
	b := bindingForTable(&t.Schema, fromName)

	grouped := len(s.GroupBy) > 0
	for _, se := range s.Exprs {
		if !se.Star && hasAgg(se.Expr) {
			grouped = true
		}
	}

	// With no join, WHERE references only the FROM table and is pushed
	// into the base access. With a join it may reference join columns, so
	// it stays a post-join residual.
	pushedWhere := s.Where
	if s.Join != nil {
		pushedWhere = nil
	}
	// Ordered LIMIT queries whose single sort key is an indexed column are
	// served in index order: rows emerge already sorted, OFFSET+LIMIT stops
	// the scan early, and no sort runs at all.
	if op := chooseOrderPath(s, t, fromName, b, grouped); op != nil {
		rows, ok, err := src.orderRows(s, t, op, b, s.Offset+s.Limit)
		if err != nil {
			return nil, err
		}
		if ok {
			return presortedResult(s, b, rows, op.describe())
		}
	}

	// ORDER BY + LIMIT served by a sequential scan: push the bounded
	// top-k heap below the base scan, so rows it rejects are dropped
	// inside the scan callback instead of being retained by baseRows and
	// handed to projection. Index access paths keep the classic route
	// (they already bound the candidate set); project()'s own top-k then
	// handles them.
	if s.Join == nil && !grouped && !s.Distinct && len(s.OrderBy) > 0 && s.Limit >= 0 &&
		chooseAccessPath(s.Where, t, fromName) == nil {
		rows, err := scanTopKRows(src, s, b)
		if err != nil {
			return nil, err
		}
		return presortedResult(s, b, rows, "seq scan "+s.From+" + top-k pushdown")
	}

	// Unordered, ungrouped, non-distinct queries need at most
	// offset+limit qualifying rows; anything fancier consumes the full
	// qualifying set.
	stopAfter := -1
	if s.Join == nil && !grouped && !s.Distinct &&
		len(s.OrderBy) == 0 && s.Limit >= 0 {
		stopAfter = s.Offset + s.Limit
	}

	rows, plan, err := baseRows(src, s, t, fromName, b, pushedWhere, stopAfter)
	if err != nil {
		return nil, err
	}

	if s.Join != nil {
		rows, b, err = hashJoin(src, rows, b, s.Join)
		if err != nil {
			return nil, err
		}
		plan += " + hash join " + s.Join.Table

		// Residual filter, post-join.
		if s.Where != nil {
			filtered := rows[:0:0]
			for _, r := range rows {
				v, err := evalExpr(s.Where, b, r)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					filtered = append(filtered, r)
				}
			}
			rows = filtered
		}
	}

	var out *ResultSet
	if grouped {
		out, err = groupAndAggregate(s, b, rows)
	} else {
		out, err = project(s, b, rows)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		out.Rows = distinctRows(out.Rows)
	}
	// Non-grouped ORDER BY is handled inside project (keys may reference
	// unprojected columns); grouped ordering inside groupAndAggregate.
	// LIMIT/OFFSET applied last.
	applyOffsetLimit(out, s.Offset, s.Limit)
	out.Plan = plan
	return out, nil
}

// presortedResult finishes a query whose base rows already arrive in
// ORDER BY order (index-order scan, scan-level top-k): project without
// re-sorting, then apply OFFSET/LIMIT and the plan line.
func presortedResult(s SelectStmt, b *binding, rows []Tuple, plan string) (*ResultSet, error) {
	ordered := s
	ordered.OrderBy = nil // rows are pre-sorted; project must not re-sort
	out, err := project(ordered, b, rows)
	if err != nil {
		return nil, err
	}
	applyOffsetLimit(out, s.Offset, s.Limit)
	out.Plan = plan
	return out, nil
}

func applyOffsetLimit(out *ResultSet, offset, limit int) {
	if offset > 0 {
		if offset >= len(out.Rows) {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[offset:]
		}
	}
	if limit >= 0 && limit < len(out.Rows) {
		out.Rows = out.Rows[:limit]
	}
}

// baseRows produces the qualifying rows for the FROM table, using an index
// when a WHERE conjunct permits. Access-path choice always inspects the
// full WHERE (sargable conjuncts reference only the FROM table), while
// filter — nil for joined queries, whose WHERE may reference join columns
// — is evaluated against each candidate before it is retained: scan
// tuples are freshly decoded, so retained rows need no defensive copy and
// rejected rows cost no allocation. stopAfter >= 0 caps retained rows.
func baseRows(src readSource, s SelectStmt, t *Table, fromName string, b *binding, filter Expr, stopAfter int) ([]Tuple, string, error) {
	if ap := chooseAccessPath(s.Where, t, fromName); ap != nil {
		rows, err := indexRows(src, s.From, t, ap, b, filter, stopAfter)
		if err != nil {
			return nil, "", err
		}
		return rows, ap.describe(), nil
	}
	var rows []Tuple
	var evalErr error
	err := src.Scan(s.From, func(_ RID, tup Tuple) bool {
		if filter != nil {
			v, err := evalExpr(filter, b, tup)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		rows = append(rows, tup)
		return stopAfter < 0 || len(rows) < stopAfter
	})
	if evalErr != nil {
		return nil, "", evalErr
	}
	return rows, "seq scan " + s.From, err
}

// accessPath is a chosen index strategy: equality or range on one column.
type accessPath struct {
	column string
	eq     *Value
	lo, hi *Value // inclusive bounds; nil = open
}

func (ap *accessPath) describe() string {
	if ap.eq != nil {
		return fmt.Sprintf("index eq scan (%s = %s)", ap.column, ap.eq.String())
	}
	parts := []string{}
	if ap.lo != nil {
		parts = append(parts, fmt.Sprintf("%s >= %s", ap.column, ap.lo.String()))
	}
	if ap.hi != nil {
		parts = append(parts, fmt.Sprintf("%s <= %s", ap.column, ap.hi.String()))
	}
	return "index range scan (" + strings.Join(parts, " and ") + ")"
}

// chooseAccessPath inspects the WHERE clause's top-level conjuncts for a
// sargable predicate (col op literal) on an indexed column of the FROM
// table. Equality beats range, and among several usable equality
// predicates the one matching the fewest index entries wins (exact
// cardinality from the B+tree posting list, so `attribute = X AND
// entity = Y` fetches via the selective entity index, not the broad
// attribute one).
func chooseAccessPath(where Expr, t *Table, fromName string) *accessPath {
	if where == nil || len(t.Indexes) == 0 {
		return nil
	}
	conjuncts := splitConjuncts(where)
	var bestEq *accessPath
	bestEqCount := 0
	var bestRange *accessPath
	for _, c := range conjuncts {
		be, ok := c.(BinaryExpr)
		if !ok {
			continue
		}
		col, lit, op, ok := sargable(be, fromName)
		if !ok {
			continue
		}
		idx, indexed := t.Indexes[col]
		if !indexed {
			continue
		}
		v := lit
		switch op {
		case "=":
			n := idx.CountKey(v)
			if bestEq == nil || n < bestEqCount {
				bestEq = &accessPath{column: col, eq: &v}
				bestEqCount = n
			}
		case ">=", ">":
			// Strict bounds are widened to inclusive; the residual filter
			// (always evaluated over fetched rows) drops boundary rows.
			if bestRange == nil {
				bestRange = &accessPath{column: col}
			}
			if bestRange.column == col && bestRange.lo == nil {
				bestRange.lo = &v
			}
		case "<=", "<":
			if bestRange == nil {
				bestRange = &accessPath{column: col}
			}
			if bestRange.column == col && bestRange.hi == nil {
				bestRange.hi = &v
			}
		}
	}
	if bestEq != nil {
		return bestEq
	}
	if bestRange != nil && bestRange.lo == nil && bestRange.hi == nil {
		return nil
	}
	return bestRange
}

// sargable matches col op literal / literal op col for the FROM table,
// returning the normalized (col, literal, op).
func sargable(be BinaryExpr, fromName string) (string, Value, string, bool) {
	switch be.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", Value{}, "", false
	}
	if cr, ok := be.Left.(ColumnRef); ok {
		if lit, ok2 := be.Right.(Literal); ok2 {
			if cr.Table == "" || cr.Table == fromName {
				return cr.Column, lit.Val, be.Op, true
			}
		}
	}
	if cr, ok := be.Right.(ColumnRef); ok {
		if lit, ok2 := be.Left.(Literal); ok2 {
			if cr.Table == "" || cr.Table == fromName {
				return cr.Column, lit.Val, flipOp(be.Op), true
			}
		}
	}
	return "", Value{}, "", false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func splitConjuncts(e Expr) []Expr {
	if be, ok := e.(BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	return []Expr{e}
}

// indexRows fetches tuples via the chosen index path, applying the full
// WHERE clause (the index may cover only some conjuncts, and range paths
// treat strict bounds as inclusive) and the early-stop cap as it goes.
func indexRows(src readSource, table string, t *Table, ap *accessPath, b *binding, where Expr, stopAfter int) ([]Tuple, error) {
	var rids []RID
	if ap.eq != nil {
		var err error
		rids, err = src.IndexLookup(table, ap.column, *ap.eq)
		if err != nil {
			return nil, err
		}
	} else {
		err := src.IndexRange(table, ap.column, ap.lo, ap.hi, func(_ Value, rid RID) bool {
			rids = append(rids, rid)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Tuple, 0, len(rids))
	for i, rid := range rids {
		if i%ctxCheckInterval == ctxCheckInterval-1 {
			if err := src.ctxErr(); err != nil {
				return nil, err
			}
		}
		tup, live, err := src.fetch(t, table, rid)
		if err != nil {
			return nil, err
		}
		if !live {
			continue
		}
		if where != nil {
			v, err := evalExpr(where, b, tup)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		rows = append(rows, tup)
		if stopAfter >= 0 && len(rows) >= stopAfter {
			break
		}
	}
	return rows, nil
}

// hashJoin joins rows with the join table on the equality condition,
// returning combined rows and the widened binding.
func hashJoin(src readSource, left []Tuple, lb *binding, j *JoinClause) ([]Tuple, *binding, error) {
	rt, err := src.table(j.Table)
	if err != nil {
		return nil, nil, err
	}
	rightName := j.Alias
	if rightName == "" {
		rightName = j.Table
	}
	rb := bindingForTable(&rt.Schema, rightName)

	// Decide which side of ON belongs to the right table.
	var leftKey, rightKey ColumnRef
	if _, err := rb.lookup(j.Right); err == nil {
		if _, err := lb.lookup(j.Left); err == nil {
			leftKey, rightKey = j.Left, j.Right
		}
	}
	if leftKey.Column == "" {
		if _, err := rb.lookup(j.Left); err == nil {
			if _, err := lb.lookup(j.Right); err == nil {
				leftKey, rightKey = j.Right, j.Left
			}
		}
	}
	if leftKey.Column == "" {
		return nil, nil, fmt.Errorf("rdbms: join condition %s = %s does not reference both tables", j.Left, j.Right)
	}
	li, err := lb.lookup(leftKey)
	if err != nil {
		return nil, nil, err
	}
	ri, err := rb.lookup(rightKey)
	if err != nil {
		return nil, nil, err
	}

	// Build hash table over the right side. Scan tuples are freshly
	// decoded, so they are retained without cloning.
	build := map[string][]Tuple{}
	var keyBuf []byte
	err = src.Scan(j.Table, func(_ RID, tup Tuple) bool {
		keyBuf = appendKey(keyBuf[:0], tup[ri])
		k := string(keyBuf)
		build[k] = append(build[k], tup)
		return true
	})
	if err != nil {
		return nil, nil, err
	}

	combined := &binding{cols: append(append([]ColumnRef(nil), lb.cols...), rb.cols...)}
	var out []Tuple
	for _, l := range left {
		if l[li].IsNull() {
			continue
		}
		keyBuf = appendKey(keyBuf[:0], l[li])
		for _, r := range build[string(keyBuf)] {
			if !Equal(l[li], r[ri]) {
				continue
			}
			row := make(Tuple, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			out = append(out, row)
		}
	}
	return out, combined, nil
}

// appendKey appends a canonical, prefix-free encoding of v to dst, for use
// as a join/distinct/group hash key. Values that Compare as equal encode
// identically (int/float encode via their float64 image), and no two
// distinct tuples can collide: strings are length-prefixed, every variant
// is tagged, so concatenated keys parse unambiguously. Callers reuse dst
// across rows; the only allocation left is the map's own key copy on
// first insertion (lookups via map[string(buf)] are allocation-free).
func appendKey(dst []byte, v Value) []byte {
	if f, ok := v.AsFloat(); ok {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		dst = append(dst, 'n')
		return append(dst, tmp[:]...)
	}
	switch v.Type {
	case TString:
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(v.S)))
		dst = append(dst, 's')
		dst = append(dst, tmp[:]...)
		return append(dst, v.S...)
	case TBool:
		if v.B {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case TNull:
		return append(dst, 'z')
	}
	return append(dst, '?')
}

// appendTupleKey appends the concatenated key of every value in the tuple.
func appendTupleKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = appendKey(dst, v)
	}
	return dst
}

// project evaluates the select list over each row, handling * expansion
// and ORDER BY (which may reference unprojected columns). An ORDER BY with
// a LIMIT keeps only the top OFFSET+LIMIT rows in a bounded heap — and
// projects only those — instead of materializing and sorting everything.
func project(s SelectStmt, b *binding, rows []Tuple) (*ResultSet, error) {
	cols, exprs := expandSelect(s, b)
	out := &ResultSet{Columns: cols}

	projectRow := func(r Tuple) (Tuple, error) {
		proj := make(Tuple, len(exprs))
		for i, e := range exprs {
			v, err := evalExpr(e, b, r)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		return proj, nil
	}

	if n, bounded := topKBound(s, len(rows)); bounded {
		sorted, err := topKRows(s, b, rows, cols, exprs, n)
		if err != nil {
			return nil, err
		}
		for _, r := range sorted {
			proj, err := projectRow(r)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, proj)
		}
		return out, nil
	}

	keyed := make([]keyedRow, 0, len(rows))
	for seq, r := range rows {
		proj, err := projectRow(r)
		if err != nil {
			return nil, err
		}
		var keys Tuple
		for _, ok := range s.OrderBy {
			v, err := evalOrderKey(ok.Expr, b, r, cols, proj)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		keyed = append(keyed, keyedRow{keys: keys, row: proj, seq: seq})
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(keyed, func(i, j int) bool {
			return orderLess(keyed[i].keys, keyed[j].keys, s.OrderBy)
		})
	}
	for _, kr := range keyed {
		out.Rows = append(out.Rows, kr.row)
	}
	return out, nil
}

// resolveKeyExprs maps ORDER BY expressions to evaluable expressions,
// following select-list aliases (ORDER BY v where the list has `val AS
// v`) — the same resolution project()'s top-k and evalOrderKey perform.
func resolveKeyExprs(s SelectStmt, cols []string, exprs []Expr) []Expr {
	keyExprs := make([]Expr, len(s.OrderBy))
	for i, ok := range s.OrderBy {
		keyExprs[i] = ok.Expr
		if cr, isCol := ok.Expr.(ColumnRef); isCol && cr.Table == "" {
			for ci, c := range cols {
				if c == cr.Column {
					keyExprs[i] = exprs[ci]
					break
				}
			}
		}
	}
	return keyExprs
}

// scanTopKRows runs the bounded top-k collector inside the sequential
// scan: each tuple has its WHERE filter and ORDER BY keys evaluated in
// the scan callback, and only tuples the heap accepts are ever retained
// — a rejected row costs no allocation beyond its transient decode.
// Survivors return in ORDER BY order (ties in scan order, matching the
// stable full sort). O(k) live memory for any table size.
func scanTopKRows(src readSource, s SelectStmt, b *binding) ([]Tuple, error) {
	n := s.Offset + s.Limit
	if n == 0 {
		return nil, nil
	}
	cols, exprs := expandSelect(s, b)
	keyExprs := resolveKeyExprs(s, cols, exprs)
	tk := newTopK(n, s.OrderBy)
	scratch := make(Tuple, len(keyExprs))
	seq := 0
	var evalErr error
	err := src.Scan(s.From, func(_ RID, tup Tuple) bool {
		if s.Where != nil {
			v, err := evalExpr(s.Where, b, tup)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		for i, e := range keyExprs {
			v, err := evalExpr(e, b, tup)
			if err != nil {
				evalErr = err
				return false
			}
			scratch[i] = v
		}
		mySeq := seq
		seq++
		if !tk.accepts(scratch) {
			return true
		}
		keys := make(Tuple, len(scratch))
		copy(keys, scratch)
		tk.add(&keyedRow{keys: keys, row: tup, seq: mySeq})
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if err != nil {
		return nil, err
	}
	sorted := tk.sorted()
	out := make([]Tuple, len(sorted))
	for i, kr := range sorted {
		out[i] = kr.row
	}
	return out, nil
}

// topKBound reports whether ORDER BY + LIMIT can be served by the bounded
// top-k collector, and the number of rows it must retain (OFFSET+LIMIT).
// DISTINCT disqualifies it: dedup after truncation could underfill the
// limit.
func topKBound(s SelectStmt, nrows int) (int, bool) {
	if len(s.OrderBy) == 0 || s.Limit < 0 || s.Distinct {
		return 0, false
	}
	n := s.Offset + s.Limit
	return n, n < nrows
}

// topKRows runs the bounded-heap top-k over the base rows, evaluating only
// ORDER BY keys per row (select-list aliases resolve to their underlying
// expressions) and returning the surviving source rows in sorted order.
// Only survivors are ever projected by the caller: O(n log k) time, O(k)
// retained rows, k projections.
func topKRows(s SelectStmt, b *binding, rows []Tuple, cols []string, exprs []Expr, n int) ([]Tuple, error) {
	if n == 0 {
		return nil, nil
	}
	keyExprs := resolveKeyExprs(s, cols, exprs)
	tk := newTopK(n, s.OrderBy)
	scratch := make(Tuple, len(keyExprs))
	for seq, r := range rows {
		for i, e := range keyExprs {
			v, err := evalExpr(e, b, r)
			if err != nil {
				return nil, err
			}
			scratch[i] = v
		}
		if !tk.accepts(scratch) {
			continue
		}
		keys := make(Tuple, len(scratch))
		copy(keys, scratch)
		tk.add(&keyedRow{keys: keys, row: r, seq: seq})
	}
	sorted := tk.sorted()
	out := make([]Tuple, len(sorted))
	for i, kr := range sorted {
		out[i] = kr.row
	}
	return out, nil
}

// evalOrderKey evaluates an ORDER BY key; a bare column name may refer to
// a select-list alias.
func evalOrderKey(e Expr, b *binding, row Tuple, cols []string, proj Tuple) (Value, error) {
	if cr, ok := e.(ColumnRef); ok && cr.Table == "" {
		for i, c := range cols {
			if c == cr.Column {
				return proj[i], nil
			}
		}
	}
	return evalExpr(e, b, row)
}

func orderLess(a, b Tuple, keys []OrderKey) bool {
	for i, k := range keys {
		c, ok := Compare(a[i], b[i])
		if !ok {
			continue
		}
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// expandSelect resolves * and produces output column names and expressions.
func expandSelect(s SelectStmt, b *binding) ([]string, []Expr) {
	var cols []string
	var exprs []Expr
	for _, se := range s.Exprs {
		if se.Star {
			for _, c := range b.cols {
				cols = append(cols, c.Column)
				exprs = append(exprs, ColumnRef{Table: c.Table, Column: c.Column})
			}
			continue
		}
		name := se.Alias
		if name == "" {
			name = exprString(se.Expr)
		}
		cols = append(cols, name)
		exprs = append(exprs, se.Expr)
	}
	return cols, exprs
}

func distinctRows(rows []Tuple) []Tuple {
	seen := map[string]bool{}
	out := rows[:0:0]
	var keyBuf []byte
	for _, r := range rows {
		keyBuf = appendTupleKey(keyBuf[:0], r)
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out = append(out, r)
		}
	}
	return out
}

// aggState accumulates one aggregate function.
type aggState struct {
	fn    string
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   Value
	max   Value
	init  bool
}

func (a *aggState) add(v Value) {
	if v.IsNull() {
		return
	}
	a.count++
	switch v.Type {
	case TInt:
		a.sumI += v.I
		a.sum += float64(v.I)
		if !a.init {
			a.isInt = true
		}
	case TFloat:
		a.sum += v.F
		a.isInt = false
	}
	if !a.init {
		a.min, a.max = v, v
		a.init = true
		return
	}
	if c, ok := Compare(v, a.min); ok && c < 0 {
		a.min = v
	}
	if c, ok := Compare(v, a.max); ok && c > 0 {
		a.max = v
	}
}

func (a *aggState) result() Value {
	switch a.fn {
	case "COUNT":
		return NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return Null()
		}
		if a.isInt {
			return NewInt(a.sumI)
		}
		return NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return Null()
		}
		return NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.init {
			return Null()
		}
		return a.min
	case "MAX":
		if !a.init {
			return Null()
		}
		return a.max
	}
	return Null()
}

// groupAndAggregate implements GROUP BY + aggregates + HAVING + ORDER BY
// for grouped queries (including implicit single-group aggregation).
func groupAndAggregate(s SelectStmt, b *binding, rows []Tuple) (*ResultSet, error) {
	cols, exprs := expandSelect(s, b)

	type group struct {
		keyVals Tuple
		rows    []Tuple
	}
	groups := map[string]*group{}
	var order []string
	var keyBuf []byte
	for _, r := range rows {
		var keyVals Tuple
		keyBuf = keyBuf[:0]
		for _, g := range s.GroupBy {
			v, err := evalExpr(g, b, r)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
			keyBuf = appendKey(keyBuf, v)
		}
		gr, ok := groups[string(keyBuf)]
		if !ok {
			gr = &group{keyVals: keyVals}
			k := string(keyBuf)
			groups[k] = gr
			order = append(order, k)
		}
		gr.rows = append(gr.rows, r)
	}
	// Implicit single group for aggregate-only queries with no rows.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	evalAggExpr := func(e Expr, gr *group) (Value, error) {
		return evalWithAggs(e, b, gr.rows, s.GroupBy, gr.keyVals)
	}

	out := &ResultSet{Columns: cols}
	var keyed []keyedRow
	for _, k := range order {
		gr := groups[k]
		if s.Having != nil {
			v, err := evalAggExpr(s.Having, gr)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		row := make(Tuple, len(exprs))
		for i, e := range exprs {
			v, err := evalAggExpr(e, gr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		var keys Tuple
		for _, okey := range s.OrderBy {
			// Order keys may be aliases of the projection.
			if cr, ok := okey.Expr.(ColumnRef); ok && cr.Table == "" {
				found := false
				for i, c := range cols {
					if c == cr.Column {
						keys = append(keys, row[i])
						found = true
						break
					}
				}
				if found {
					continue
				}
			}
			v, err := evalAggExpr(okey.Expr, gr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		keyed = append(keyed, keyedRow{keys: keys, row: row, seq: len(keyed)})
	}
	if len(s.OrderBy) > 0 {
		if n, bounded := topKBound(s, len(keyed)); bounded {
			// Groups are already materialized; the bounded heap still
			// replaces the O(g log g) sort with O(g log k).
			tk := newTopK(n, s.OrderBy)
			for i := range keyed {
				tk.add(&keyed[i])
			}
			keyed = keyed[:0:0]
			for _, kr := range tk.sorted() {
				keyed = append(keyed, *kr)
			}
		} else {
			sort.SliceStable(keyed, func(i, j int) bool {
				return orderLess(keyed[i].keys, keyed[j].keys, s.OrderBy)
			})
		}
	}
	for _, kr := range keyed {
		out.Rows = append(out.Rows, kr.row)
	}
	return out, nil
}

// evalWithAggs evaluates an expression that may contain aggregates over the
// group's rows. Non-aggregate column refs must be GROUP BY keys.
func evalWithAggs(e Expr, b *binding, rows []Tuple, groupBy []ColumnRef, keyVals Tuple) (Value, error) {
	switch x := e.(type) {
	case AggExpr:
		st := &aggState{fn: x.Func}
		for _, r := range rows {
			if x.Star {
				st.count++
				continue
			}
			v, err := evalExpr(x.Arg, b, r)
			if err != nil {
				return Value{}, err
			}
			st.add(v)
		}
		return st.result(), nil
	case ColumnRef:
		for i, g := range groupBy {
			if g.Column == x.Column && (x.Table == "" || g.Table == "" || g.Table == x.Table) {
				return keyVals[i], nil
			}
		}
		return Value{}, fmt.Errorf("rdbms: column %s is neither aggregated nor grouped", x)
	case Literal:
		return x.Val, nil
	case BinaryExpr:
		l, err := evalWithAggs(x.Left, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		r, err := evalWithAggs(x.Right, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		return evalBinary(BinaryExpr{Op: x.Op, Left: Literal{Val: l}, Right: Literal{Val: r}}, b, nil)
	case UnaryExpr:
		v, err := evalWithAggs(x.X, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		return evalExpr(UnaryExpr{Op: x.Op, X: Literal{Val: v}}, b, nil)
	case IsNullExpr:
		v, err := evalWithAggs(x.X, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		return NewBool(v.IsNull() != x.Not), nil
	case BetweenExpr:
		v, err := evalWithAggs(x.X, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		lo, err := evalWithAggs(x.Lo, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		hi, err := evalWithAggs(x.Hi, b, rows, groupBy, keyVals)
		if err != nil {
			return Value{}, err
		}
		return evalExpr(BetweenExpr{X: Literal{Val: v}, Lo: Literal{Val: lo}, Hi: Literal{Val: hi}}, b, nil)
	}
	return Value{}, fmt.Errorf("rdbms: unsupported grouped expression %T", e)
}
