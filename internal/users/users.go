// Package users implements the user layer's management modules from the
// paper's Figure 1: authentication, a reputation manager (for weighting
// mass-collaboration feedback), and an incentive manager (accounting for
// contribution rewards).
package users

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Role separates the paper's two user populations.
type Role string

const (
	// RoleDeveloper writes declarative IE+II+HI programs and SQL.
	RoleDeveloper Role = "developer"
	// RoleOrdinary asks keyword questions and gives feedback.
	RoleOrdinary Role = "ordinary"
)

// ErrAuth is returned for bad credentials or unknown users.
var ErrAuth = errors.New("users: authentication failed")

// ErrExists is returned when registering a duplicate username.
var ErrExists = errors.New("users: user already exists")

// User is an account.
type User struct {
	Name     string
	Role     Role
	passHash string
}

// Manager is the authentication + reputation + incentive hub. Safe for
// concurrent use.
type Manager struct {
	mu       sync.RWMutex
	users    map[string]*User
	sessions map[string]string // token -> username
	rep      map[string]*repState
	points   map[string]int64
	nextTok  int64
}

type repState struct {
	correct int
	wrong   int
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		users:    make(map[string]*User),
		sessions: make(map[string]string),
		rep:      make(map[string]*repState),
		points:   make(map[string]int64),
	}
}

func hashPassword(name, pass string) string {
	sum := sha256.Sum256([]byte(name + "\x00" + pass))
	return hex.EncodeToString(sum[:])
}

// Register creates an account.
func (m *Manager) Register(name, pass string, role Role) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.users[name]; ok {
		return ErrExists
	}
	m.users[name] = &User{Name: name, Role: role, passHash: hashPassword(name, pass)}
	m.rep[name] = &repState{}
	return nil
}

// Authenticate verifies credentials and returns a session token.
func (m *Manager) Authenticate(name, pass string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	u, ok := m.users[name]
	if !ok || u.passHash != hashPassword(name, pass) {
		return "", ErrAuth
	}
	m.nextTok++
	tok := fmt.Sprintf("tok-%d-%s", m.nextTok, hashPassword(name, fmt.Sprint(m.nextTok))[:12])
	m.sessions[tok] = name
	return tok, nil
}

// Whoami resolves a session token to a user.
func (m *Manager) Whoami(token string) (*User, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.sessions[token]
	if !ok {
		return nil, ErrAuth
	}
	u := m.users[name]
	cp := *u
	return &cp, nil
}

// Logout invalidates a token.
func (m *Manager) Logout(token string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, token)
}

// --- Reputation --------------------------------------------------------------

// RecordFeedbackOutcome updates a user's reputation after the system learns
// whether their answer was correct (e.g. it agreed with the eventual
// consensus or a gold check).
func (m *Manager) RecordFeedbackOutcome(name string, correct bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.rep[name]
	if !ok {
		st = &repState{}
		m.rep[name] = st
	}
	if correct {
		st.correct++
	} else {
		st.wrong++
	}
}

// Weight implements hi.ReputationSource: a Laplace-smoothed accuracy
// estimate in (0,1), so users with a track record of correct feedback count
// more in mass-collaboration votes.
func (m *Manager) Weight(name string) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.rep[name]
	if !ok {
		return 0.5
	}
	return (float64(st.correct) + 1) / (float64(st.correct+st.wrong) + 2)
}

// Accuracy returns raw (correct, wrong) counts.
func (m *Manager) Accuracy(name string) (correct, wrong int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if st, ok := m.rep[name]; ok {
		return st.correct, st.wrong
	}
	return 0, 0
}

// --- Incentives --------------------------------------------------------------

// Award grants incentive points for a contribution (answered question,
// confirmed correction, contributed page).
func (m *Manager) Award(name string, points int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.points[name] += points
}

// Points returns a user's balance.
func (m *Manager) Points(name string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.points[name]
}

// LeaderEntry is one row of the incentive leaderboard.
type LeaderEntry struct {
	Name   string
	Points int64
	Weight float64
}

// Leaderboard returns the top-n contributors by points.
func (m *Manager) Leaderboard(n int) []LeaderEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]LeaderEntry, 0, len(m.points))
	for name, p := range m.points {
		st := m.rep[name]
		w := 0.5
		if st != nil {
			w = (float64(st.correct) + 1) / (float64(st.correct+st.wrong) + 2)
		}
		out = append(out, LeaderEntry{Name: name, Points: p, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Points != out[j].Points {
			return out[i].Points > out[j].Points
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
