package users

import (
	"testing"
)

func TestRegisterAuthenticate(t *testing.T) {
	m := NewManager()
	if err := m.Register("alice", "secret", RoleDeveloper); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("alice", "other", RoleOrdinary); err != ErrExists {
		t.Fatalf("duplicate register: %v", err)
	}
	tok, err := m.Authenticate("alice", "secret")
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Whoami(tok)
	if err != nil || u.Name != "alice" || u.Role != RoleDeveloper {
		t.Fatalf("whoami: %+v %v", u, err)
	}
	if _, err := m.Authenticate("alice", "wrong"); err != ErrAuth {
		t.Fatalf("wrong password: %v", err)
	}
	if _, err := m.Authenticate("bob", "x"); err != ErrAuth {
		t.Fatalf("unknown user: %v", err)
	}
	m.Logout(tok)
	if _, err := m.Whoami(tok); err != ErrAuth {
		t.Fatalf("after logout: %v", err)
	}
}

func TestTokensUnique(t *testing.T) {
	m := NewManager()
	m.Register("a", "p", RoleOrdinary)
	t1, _ := m.Authenticate("a", "p")
	t2, _ := m.Authenticate("a", "p")
	if t1 == t2 {
		t.Fatal("tokens must be unique per session")
	}
}

func TestReputationWeight(t *testing.T) {
	m := NewManager()
	m.Register("u", "p", RoleOrdinary)
	if w := m.Weight("u"); w != 0.5 {
		t.Fatalf("fresh weight = %v, want 0.5", w)
	}
	if w := m.Weight("stranger"); w != 0.5 {
		t.Fatalf("unknown weight = %v", w)
	}
	for i := 0; i < 8; i++ {
		m.RecordFeedbackOutcome("u", true)
	}
	if w := m.Weight("u"); w != 0.9 { // (8+1)/(8+2)
		t.Fatalf("good weight = %v, want 0.9", w)
	}
	m2 := NewManager()
	m2.Register("v", "p", RoleOrdinary)
	for i := 0; i < 8; i++ {
		m2.RecordFeedbackOutcome("v", false)
	}
	if w := m2.Weight("v"); w != 0.1 {
		t.Fatalf("bad weight = %v, want 0.1", w)
	}
	c, wr := m2.Accuracy("v")
	if c != 0 || wr != 8 {
		t.Fatalf("accuracy: %d %d", c, wr)
	}
	// Recording for an unregistered user auto-creates state.
	m2.RecordFeedbackOutcome("ghost", true)
	if w := m2.Weight("ghost"); w <= 0.5 {
		t.Fatalf("ghost weight = %v", w)
	}
}

func TestIncentivesAndLeaderboard(t *testing.T) {
	m := NewManager()
	for _, u := range []string{"a", "b", "c"} {
		m.Register(u, "p", RoleOrdinary)
	}
	m.Award("a", 10)
	m.Award("b", 30)
	m.Award("a", 5)
	m.Award("c", 30)
	if p := m.Points("a"); p != 15 {
		t.Fatalf("points a = %d", p)
	}
	lb := m.Leaderboard(2)
	if len(lb) != 2 {
		t.Fatalf("leaderboard size %d", len(lb))
	}
	// b and c tie at 30; name tie-break puts b first.
	if lb[0].Name != "b" || lb[1].Name != "c" {
		t.Fatalf("leaderboard: %+v", lb)
	}
	full := m.Leaderboard(0)
	if len(full) != 3 || full[2].Name != "a" {
		t.Fatalf("full leaderboard: %+v", full)
	}
}

func TestConcurrentReputation(t *testing.T) {
	m := NewManager()
	m.Register("u", "p", RoleOrdinary)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				m.RecordFeedbackOutcome("u", j%2 == 0)
				m.Weight("u")
				m.Award("u", 1)
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	c, w := m.Accuracy("u")
	if c+w != 800 {
		t.Fatalf("outcomes lost: %d", c+w)
	}
	if m.Points("u") != 800 {
		t.Fatalf("points lost: %d", m.Points("u"))
	}
}
