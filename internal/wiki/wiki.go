// Package wiki is the MediaWiki-like store of Figure 1's storage layer: it
// holds user contributions (pages with full revision history) under
// optimistic concurrency control — an editor submits the revision number
// they based their edit on, and a conflicting concurrent edit is rejected
// rather than silently overwritten.
package wiki

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrConflict is returned when an edit's base revision is stale.
var ErrConflict = errors.New("wiki: edit conflict (page changed since base revision)")

// ErrNoPage is returned for operations on missing pages.
var ErrNoPage = errors.New("wiki: no such page")

// Revision is one stored version of a page.
type Revision struct {
	Num     int // 1-based
	Author  string
	Comment string
	Text    string
}

type page struct {
	title     string
	revisions []Revision
}

// Store is the wiki. Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	pages map[string]*page
}

// NewStore returns an empty wiki.
func NewStore() *Store { return &Store{pages: map[string]*page{}} }

// Create adds a new page; it fails if the title exists.
func (s *Store) Create(title, text, author, comment string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[title]; ok {
		return fmt.Errorf("wiki: page %q already exists", title)
	}
	s.pages[title] = &page{
		title:     title,
		revisions: []Revision{{Num: 1, Author: author, Comment: comment, Text: text}},
	}
	return nil
}

// Edit appends a revision if baseRev is still the head (optimistic
// concurrency). On success it returns the new revision number.
func (s *Store) Edit(title, text, author, comment string, baseRev int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[title]
	if !ok {
		return 0, ErrNoPage
	}
	head := len(p.revisions)
	if baseRev != head {
		return 0, fmt.Errorf("%w: base %d, head %d", ErrConflict, baseRev, head)
	}
	p.revisions = append(p.revisions, Revision{
		Num: head + 1, Author: author, Comment: comment, Text: text,
	})
	return head + 1, nil
}

// Read returns the head revision of a page.
func (s *Store) Read(title string) (Revision, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[title]
	if !ok {
		return Revision{}, ErrNoPage
	}
	return p.revisions[len(p.revisions)-1], nil
}

// ReadRev returns a specific revision.
func (s *Store) ReadRev(title string, rev int) (Revision, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[title]
	if !ok {
		return Revision{}, ErrNoPage
	}
	if rev < 1 || rev > len(p.revisions) {
		return Revision{}, fmt.Errorf("wiki: %q has no revision %d", title, rev)
	}
	return p.revisions[rev-1], nil
}

// History returns all revisions of a page, oldest first.
func (s *Store) History(title string) ([]Revision, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[title]
	if !ok {
		return nil, ErrNoPage
	}
	return append([]Revision(nil), p.revisions...), nil
}

// Titles lists all page titles sorted.
func (s *Store) Titles() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for t := range s.pages {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Contributions counts revisions per author across all pages (feeds the
// incentive manager).
func (s *Store) Contributions() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string]int{}
	for _, p := range s.pages {
		for _, r := range p.revisions {
			out[r.Author]++
		}
	}
	return out
}

// Diff renders a minimal line diff between two revisions of a page
// ("-" removed, "+" added), for review interfaces.
func (s *Store) Diff(title string, fromRev, toRev int) (string, error) {
	from, err := s.ReadRev(title, fromRev)
	if err != nil {
		return "", err
	}
	to, err := s.ReadRev(title, toRev)
	if err != nil {
		return "", err
	}
	a := strings.Split(from.Text, "\n")
	b := strings.Split(to.Text, "\n")
	var out strings.Builder
	// Common-prefix/suffix trim; middle rendered as remove+add.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	sa, sb := len(a), len(b)
	for sa > p && sb > p && a[sa-1] == b[sb-1] {
		sa--
		sb--
	}
	for _, l := range a[p:sa] {
		fmt.Fprintf(&out, "- %s\n", l)
	}
	for _, l := range b[p:sb] {
		fmt.Fprintf(&out, "+ %s\n", l)
	}
	if out.Len() == 0 {
		return "(no changes)\n", nil
	}
	return out.String(), nil
}
