package wiki

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCreateReadEdit(t *testing.T) {
	s := NewStore()
	if err := s.Create("Madison", "v1 text", "alice", "created"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("Madison", "x", "bob", ""); err == nil {
		t.Fatal("duplicate create should fail")
	}
	rev, err := s.Read("Madison")
	if err != nil || rev.Num != 1 || rev.Text != "v1 text" || rev.Author != "alice" {
		t.Fatalf("read: %+v %v", rev, err)
	}
	n, err := s.Edit("Madison", "v2 text", "bob", "fix", 1)
	if err != nil || n != 2 {
		t.Fatalf("edit: %v %v", n, err)
	}
	rev, _ = s.Read("Madison")
	if rev.Num != 2 || rev.Author != "bob" {
		t.Fatalf("head: %+v", rev)
	}
	if _, err := s.Read("nope"); !errors.Is(err, ErrNoPage) {
		t.Fatalf("missing page: %v", err)
	}
	if _, err := s.Edit("nope", "x", "a", "", 1); !errors.Is(err, ErrNoPage) {
		t.Fatalf("edit missing: %v", err)
	}
}

func TestOptimisticConcurrencyConflict(t *testing.T) {
	s := NewStore()
	s.Create("p", "base", "a", "")
	// Two editors both read revision 1.
	if _, err := s.Edit("p", "from b", "b", "", 1); err != nil {
		t.Fatal(err)
	}
	// The second editor's base is stale.
	if _, err := s.Edit("p", "from c", "c", "", 1); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// After re-reading head, the edit succeeds.
	head, _ := s.Read("p")
	if _, err := s.Edit("p", "from c rebased", "c", "", head.Num); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryAndReadRev(t *testing.T) {
	s := NewStore()
	s.Create("p", "one", "a", "c1")
	s.Edit("p", "two", "b", "c2", 1)
	s.Edit("p", "three", "a", "c3", 2)
	hist, err := s.History("p")
	if err != nil || len(hist) != 3 {
		t.Fatalf("history: %v %v", hist, err)
	}
	if hist[0].Text != "one" || hist[2].Text != "three" {
		t.Fatalf("history order: %+v", hist)
	}
	rev, err := s.ReadRev("p", 2)
	if err != nil || rev.Text != "two" {
		t.Fatalf("ReadRev: %+v %v", rev, err)
	}
	if _, err := s.ReadRev("p", 9); err == nil {
		t.Fatal("bad rev should fail")
	}
	if _, err := s.History("nope"); !errors.Is(err, ErrNoPage) {
		t.Fatal("history of missing page")
	}
}

func TestTitlesAndContributions(t *testing.T) {
	s := NewStore()
	s.Create("B", "x", "alice", "")
	s.Create("A", "y", "bob", "")
	s.Edit("A", "y2", "alice", "", 1)
	titles := s.Titles()
	if len(titles) != 2 || titles[0] != "A" {
		t.Fatalf("titles: %v", titles)
	}
	contrib := s.Contributions()
	if contrib["alice"] != 2 || contrib["bob"] != 1 {
		t.Fatalf("contributions: %v", contrib)
	}
}

func TestDiff(t *testing.T) {
	s := NewStore()
	s.Create("p", "line1\nline2\nline3", "a", "")
	s.Edit("p", "line1\nCHANGED\nline3", "b", "", 1)
	d, err := s.Diff("p", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "- line2") || !strings.Contains(d, "+ CHANGED") {
		t.Fatalf("diff:\n%s", d)
	}
	if strings.Contains(d, "line1") {
		t.Fatalf("unchanged lines should not appear:\n%s", d)
	}
	same, _ := s.Diff("p", 2, 2)
	if !strings.Contains(same, "no changes") {
		t.Fatalf("identity diff: %q", same)
	}
	if _, err := s.Diff("nope", 1, 1); err == nil {
		t.Fatal("diff of missing page")
	}
}

func TestConcurrentEditorsExactlyOneWinsPerRound(t *testing.T) {
	s := NewStore()
	s.Create("p", "v0", "seed", "")
	const editors = 8
	const rounds = 20
	var wg sync.WaitGroup
	for e := 0; e < editors; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					head, err := s.Read("p")
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Edit("p", head.Text+".", "e", "", head.Num); err == nil {
						break
					} else if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}(e)
	}
	wg.Wait()
	hist, _ := s.History("p")
	if len(hist) != 1+editors*rounds {
		t.Fatalf("revisions: %d, want %d", len(hist), 1+editors*rounds)
	}
	head, _ := s.Read("p")
	if len(head.Text) != 2+editors*rounds {
		t.Fatalf("all edits must compose: %q", head.Text[:10])
	}
}
