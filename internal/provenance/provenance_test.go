package provenance

import (
	"strings"
	"testing"
)

func buildChain(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := NewGraph()
	docID := g.MustAdd(KindDocument, "Madison, Wisconsin (article)", "", 0)
	exID := g.MustAdd(KindExtraction, "temperature[September]=62.0", "temperature-rule", 0.92, docID)
	fbID := g.MustAdd(KindFeedback, "user alice confirmed", "", 0.9)
	derID := g.MustAdd(KindDerived, "avg temp Mar-Sep = 59.7", "AVG", 0.95, exID, fbID)
	return g, docID, exID, derID
}

func TestAddAndGet(t *testing.T) {
	g, docID, exID, _ := buildChain(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	n, ok := g.Get(exID)
	if !ok || n.Operator != "temperature-rule" || len(n.Inputs) != 1 || n.Inputs[0] != docID {
		t.Fatalf("node: %+v", n)
	}
	if _, ok := g.Get(999); ok {
		t.Fatal("missing node should not resolve")
	}
}

func TestAddRejectsDanglingInput(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add(KindDerived, "x", "op", 0.5, 42); err == nil {
		t.Fatal("dangling input must error")
	}
}

func TestWhyTopologicalOrder(t *testing.T) {
	g, docID, exID, derID := buildChain(t)
	why := g.Why(derID)
	if len(why) != 4 {
		t.Fatalf("why returned %d nodes", len(why))
	}
	pos := map[NodeID]int{}
	for i, n := range why {
		pos[n.ID] = i
	}
	if pos[docID] > pos[exID] || pos[exID] > pos[derID] {
		t.Fatalf("inputs must precede outputs: %v", pos)
	}
}

func TestSourcesAndDepth(t *testing.T) {
	g, docID, _, derID := buildChain(t)
	srcs := g.Sources(derID)
	if len(srcs) != 2 {
		t.Fatalf("sources: %v", srcs)
	}
	foundDoc := false
	for _, s := range srcs {
		if s.ID == docID {
			foundDoc = true
		}
		if len(s.Inputs) != 0 {
			t.Fatal("source has inputs")
		}
	}
	if !foundDoc {
		t.Fatal("document source missing")
	}
	if d := g.Depth(derID); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	if d := g.Depth(docID); d != 0 {
		t.Fatalf("source depth = %d", d)
	}
}

func TestExplainRendering(t *testing.T) {
	g, _, _, derID := buildChain(t)
	text := g.Explain(derID)
	for _, want := range []string{
		"avg temp Mar-Sep", "temperature-rule", "Madison, Wisconsin (article)",
		"user alice confirmed", "conf 0.92", "via AVG",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explanation missing %q:\n%s", want, text)
		}
	}
	// Indentation reflects depth.
	if !strings.Contains(text, "  - [extraction]") {
		t.Fatalf("no indentation:\n%s", text)
	}
}

func TestExplainSharedInputShownOnce(t *testing.T) {
	g := NewGraph()
	doc := g.MustAdd(KindDocument, "doc", "", 0)
	e1 := g.MustAdd(KindExtraction, "e1", "op", 0.9, doc)
	e2 := g.MustAdd(KindExtraction, "e2", "op", 0.9, doc)
	top := g.MustAdd(KindDerived, "top", "join", 0.8, e1, e2)
	text := g.Explain(top)
	if strings.Count(text, "[document] doc") != 2 {
		// The doc appears under both parents, but its own subtree is only
		// expanded once; both references must render.
		t.Fatalf("shared input rendering:\n%s", text)
	}
}

func TestDiamondWhyNoDuplicates(t *testing.T) {
	g := NewGraph()
	doc := g.MustAdd(KindDocument, "doc", "", 0)
	e1 := g.MustAdd(KindExtraction, "e1", "op", 0.9, doc)
	e2 := g.MustAdd(KindExtraction, "e2", "op", 0.9, doc)
	top := g.MustAdd(KindDerived, "top", "join", 0.8, e1, e2)
	why := g.Why(top)
	if len(why) != 4 {
		t.Fatalf("diamond why has %d nodes, want 4", len(why))
	}
}

func TestConcurrentAdds(t *testing.T) {
	g := NewGraph()
	root := g.MustAdd(KindDocument, "root", "", 0)
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 100; i++ {
				g.MustAdd(KindExtraction, "e", "op", 0.5, root)
			}
			done <- true
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if g.Len() != 801 {
		t.Fatalf("Len = %d", g.Len())
	}
}
