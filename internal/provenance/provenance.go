// Package provenance is the processing layer's provenance and explanation
// manager (Figure 1, Part V): every derived datum records which operator
// produced it from which inputs, forming a lineage DAG. Why-provenance
// queries walk the DAG back to source documents and human answers, and the
// explanation manager renders the walk as human-readable text — the
// substrate for "explain why the system believes Madison's September
// temperature is 62".
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a lineage node.
type NodeID int64

// NodeKind classifies lineage nodes.
type NodeKind string

const (
	// KindDocument is a source document.
	KindDocument NodeKind = "document"
	// KindExtraction is a field produced by an IE operator.
	KindExtraction NodeKind = "extraction"
	// KindIntegration is a merge/match produced by an II operator.
	KindIntegration NodeKind = "integration"
	// KindFeedback is a human answer.
	KindFeedback NodeKind = "feedback"
	// KindDerived is any downstream computed datum (tuple, aggregate).
	KindDerived NodeKind = "derived"
)

// Node is one lineage DAG node.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Label    string  // human-readable description
	Operator string  // producing operator, empty for sources
	Conf     float64 // confidence at production time (0 if n/a)
	Inputs   []NodeID
}

// Graph is an append-only lineage DAG. Safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	nodes map[NodeID]*Node
	next  NodeID
}

// NewGraph returns an empty lineage graph.
func NewGraph() *Graph { return &Graph{nodes: map[NodeID]*Node{}} }

// Add records a node; inputs must already exist. It returns the new id.
func (g *Graph) Add(kind NodeKind, label, operator string, conf float64, inputs ...NodeID) (NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, in := range inputs {
		if _, ok := g.nodes[in]; !ok {
			return 0, fmt.Errorf("provenance: unknown input node %d", in)
		}
	}
	g.next++
	id := g.next
	g.nodes[id] = &Node{
		ID: id, Kind: kind, Label: label, Operator: operator, Conf: conf,
		Inputs: append([]NodeID(nil), inputs...),
	}
	return id, nil
}

// MustAdd is Add that panics on a dangling input; for construction code
// whose inputs are by construction present.
func (g *Graph) MustAdd(kind NodeKind, label, operator string, conf float64, inputs ...NodeID) NodeID {
	id, err := g.Add(kind, label, operator, conf, inputs...)
	if err != nil {
		panic(err)
	}
	return id
}

// Get returns a copy of the node, or false.
func (g *Graph) Get(id NodeID) (Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Len returns the node count.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// Why returns the full ancestry of id (why-provenance): every node
// reachable through input edges, in a stable topological-ish order
// (sources first).
func (g *Graph) Why(id NodeID) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[NodeID]bool{}
	var order []NodeID
	var visit func(NodeID)
	visit = func(cur NodeID) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		n, ok := g.nodes[cur]
		if !ok {
			return
		}
		ins := append([]NodeID(nil), n.Inputs...)
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
		for _, in := range ins {
			visit(in)
		}
		order = append(order, cur)
	}
	visit(id)
	out := make([]Node, 0, len(order))
	for _, nid := range order {
		out = append(out, *g.nodes[nid])
	}
	return out
}

// Sources returns only the source nodes (documents, feedback) behind id.
func (g *Graph) Sources(id NodeID) []Node {
	var out []Node
	for _, n := range g.Why(id) {
		if len(n.Inputs) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Depth returns the longest input chain length below id (a source is 0).
func (g *Graph) Depth(id NodeID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	memo := map[NodeID]int{}
	var depth func(NodeID) int
	depth = func(cur NodeID) int {
		if d, ok := memo[cur]; ok {
			return d
		}
		n, ok := g.nodes[cur]
		if !ok || len(n.Inputs) == 0 {
			memo[cur] = 0
			return 0
		}
		best := 0
		for _, in := range n.Inputs {
			if d := depth(in) + 1; d > best {
				best = d
			}
		}
		memo[cur] = best
		return best
	}
	return depth(id)
}

// Explain renders a human-readable, indented derivation of id — the
// explanation manager's output.
func (g *Graph) Explain(id NodeID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b strings.Builder
	seen := map[NodeID]bool{}
	var render func(NodeID, int)
	render = func(cur NodeID, depth int) {
		n, ok := g.nodes[cur]
		if !ok {
			return
		}
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s- [%s] %s", indent, n.Kind, n.Label)
		if n.Operator != "" {
			line += fmt.Sprintf(" (via %s", n.Operator)
			if n.Conf > 0 {
				line += fmt.Sprintf(", conf %.2f", n.Conf)
			}
			line += ")"
		} else if n.Conf > 0 {
			line += fmt.Sprintf(" (conf %.2f)", n.Conf)
		}
		b.WriteString(line + "\n")
		if seen[cur] {
			if len(n.Inputs) > 0 {
				b.WriteString(indent + "  (shown above)\n")
			}
			return
		}
		seen[cur] = true
		for _, in := range n.Inputs {
			render(in, depth+1)
		}
	}
	render(id, 0)
	return b.String()
}
