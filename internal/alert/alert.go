// Package alert implements the user layer's alerting/monitoring
// exploitation mode: users register standing queries over the extracted
// structure ("tell me when a city's population exceeds one million"), and
// each refresh of the structure is checked against the subscriptions.
package alert

import (
	"fmt"
	"strconv"
	"sync"
)

// Row mirrors the extracted EAV structure.
type Row struct {
	Entity    string
	Attribute string
	Qualifier string
	Value     string
	Conf      float64
}

// Op is a comparison operator for numeric conditions.
type Op string

const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
	OpEQ Op = "="
	OpNE Op = "!="
)

// Subscription is a standing query: attribute condition, optional entity
// restriction, optional minimum confidence.
type Subscription struct {
	ID        int
	User      string
	Entity    string // empty = any entity
	Attribute string
	Op        Op
	Threshold float64
	MinConf   float64
}

// Notification is one fired subscription instance.
type Notification struct {
	Subscription Subscription
	Row          Row
	Message      string
}

// Center manages subscriptions and evaluates them against refreshes. Safe
// for concurrent use. Duplicate suppression: a (subscription, entity,
// qualifier, value) combination notifies once.
type Center struct {
	mu      sync.Mutex
	nextID  int
	subs    map[int]Subscription
	fired   map[string]bool
	history []Notification
}

// NewCenter returns an empty alert center.
func NewCenter() *Center {
	return &Center{subs: map[int]Subscription{}, fired: map[string]bool{}}
}

// Subscribe registers a standing query and returns its id.
func (c *Center) Subscribe(s Subscription) (int, error) {
	if s.Attribute == "" {
		return 0, fmt.Errorf("alert: subscription needs an attribute")
	}
	switch s.Op {
	case OpGT, OpGE, OpLT, OpLE, OpEQ, OpNE:
	default:
		return 0, fmt.Errorf("alert: bad operator %q", s.Op)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	s.ID = c.nextID
	c.subs[s.ID] = s
	return s.ID, nil
}

// Unsubscribe removes a subscription.
func (c *Center) Unsubscribe(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[id]; !ok {
		return false
	}
	delete(c.subs, id)
	return true
}

// Subscriptions returns the active subscription count.
func (c *Center) Subscriptions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

// Evaluate checks rows (a refresh of the extracted structure) against all
// subscriptions and returns newly fired notifications.
func (c *Center) Evaluate(rows []Row) []Notification {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Notification
	for _, r := range rows {
		v, err := strconv.ParseFloat(r.Value, 64)
		if err != nil {
			continue
		}
		for _, s := range c.subs {
			if s.Attribute != r.Attribute {
				continue
			}
			if s.Entity != "" && s.Entity != r.Entity {
				continue
			}
			if r.Conf < s.MinConf {
				continue
			}
			if !compare(v, s.Op, s.Threshold) {
				continue
			}
			key := fmt.Sprintf("%d|%s|%s|%s", s.ID, r.Entity, r.Qualifier, r.Value)
			if c.fired[key] {
				continue
			}
			c.fired[key] = true
			out = append(out, Notification{
				Subscription: s,
				Row:          r,
				Message: fmt.Sprintf("alert for %s: %s.%s = %s (%s %g)",
					s.User, r.Entity, r.Attribute, r.Value, s.Op, s.Threshold),
			})
		}
	}
	c.history = append(c.history, out...)
	return out
}

// History returns every notification ever fired, in firing order. It is
// the delivery ledger concurrency tests audit: under racing refreshes,
// each (subscription, row identity, value) must appear exactly once.
func (c *Center) History() []Notification {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Notification(nil), c.history...)
}

func compare(v float64, op Op, threshold float64) bool {
	switch op {
	case OpGT:
		return v > threshold
	case OpGE:
		return v >= threshold
	case OpLT:
		return v < threshold
	case OpLE:
		return v <= threshold
	case OpEQ:
		return v == threshold
	case OpNE:
		return v != threshold
	}
	return false
}
