package alert

import (
	"fmt"
	"sync"
	"testing"
)

func TestSubscribeValidation(t *testing.T) {
	c := NewCenter()
	if _, err := c.Subscribe(Subscription{Op: OpGT}); err == nil {
		t.Fatal("missing attribute should fail")
	}
	if _, err := c.Subscribe(Subscription{Attribute: "a", Op: "~"}); err == nil {
		t.Fatal("bad operator should fail")
	}
	id, err := c.Subscribe(Subscription{Attribute: "population", Op: OpGT, Threshold: 1000000, User: "alice"})
	if err != nil || id == 0 {
		t.Fatalf("subscribe: %v %v", id, err)
	}
	if c.Subscriptions() != 1 {
		t.Fatalf("count: %d", c.Subscriptions())
	}
}

func TestEvaluateFiresAndSuppressesDuplicates(t *testing.T) {
	c := NewCenter()
	c.Subscribe(Subscription{Attribute: "population", Op: OpGT, Threshold: 1000000, User: "alice"})
	rows := []Row{
		{Entity: "Chicago", Attribute: "population", Value: "2746388", Conf: 0.9},
		{Entity: "Madison", Attribute: "population", Value: "233209", Conf: 0.9},
		{Entity: "Chicago", Attribute: "motto", Value: "x", Conf: 0.9},
	}
	fired := c.Evaluate(rows)
	if len(fired) != 1 || fired[0].Row.Entity != "Chicago" {
		t.Fatalf("fired: %+v", fired)
	}
	// Re-evaluating the same rows must not re-fire.
	if fired := c.Evaluate(rows); len(fired) != 0 {
		t.Fatalf("duplicate fired: %+v", fired)
	}
	// A changed value fires again.
	rows[0].Value = "2800000"
	if fired := c.Evaluate(rows); len(fired) != 1 {
		t.Fatalf("changed value: %+v", fired)
	}
}

func TestEntityRestrictionAndMinConf(t *testing.T) {
	c := NewCenter()
	c.Subscribe(Subscription{
		Entity: "Madison", Attribute: "temperature", Op: OpLT, Threshold: 0, MinConf: 0.8,
	})
	rows := []Row{
		{Entity: "Chicago", Attribute: "temperature", Value: "-5", Conf: 0.9}, // wrong entity
		{Entity: "Madison", Attribute: "temperature", Value: "-5", Conf: 0.5}, // low conf
		{Entity: "Madison", Attribute: "temperature", Value: "-5", Conf: 0.9},
	}
	fired := c.Evaluate(rows)
	if len(fired) != 1 || fired[0].Row.Conf != 0.9 {
		t.Fatalf("fired: %+v", fired)
	}
}

func TestOperators(t *testing.T) {
	cases := []struct {
		op   Op
		v    float64
		th   float64
		want bool
	}{
		{OpGT, 5, 4, true}, {OpGT, 4, 4, false},
		{OpGE, 4, 4, true}, {OpLT, 3, 4, true},
		{OpLE, 4, 4, true}, {OpLE, 5, 4, false},
		{OpEQ, 4, 4, true}, {OpNE, 5, 4, true}, {OpNE, 4, 4, false},
	}
	for _, c := range cases {
		if got := compare(c.v, c.op, c.th); got != c.want {
			t.Errorf("compare(%v %s %v) = %v", c.v, c.op, c.th, got)
		}
	}
}

func TestUnsubscribe(t *testing.T) {
	c := NewCenter()
	id, _ := c.Subscribe(Subscription{Attribute: "a", Op: OpGT})
	if !c.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	if c.Unsubscribe(id) {
		t.Fatal("double unsubscribe")
	}
	fired := c.Evaluate([]Row{{Attribute: "a", Value: "99", Conf: 1}})
	if len(fired) != 0 {
		t.Fatalf("unsubscribed still fires: %+v", fired)
	}
}

func TestNonNumericValuesSkipped(t *testing.T) {
	c := NewCenter()
	c.Subscribe(Subscription{Attribute: "a", Op: OpGT, Threshold: 0})
	if fired := c.Evaluate([]Row{{Attribute: "a", Value: "hello", Conf: 1}}); len(fired) != 0 {
		t.Fatalf("text row fired: %+v", fired)
	}
}

// TestEvaluateConcurrent hammers Evaluate from many goroutines with the
// same refresh: across all returned batches each identity fires exactly
// once, and History agrees.
func TestEvaluateConcurrent(t *testing.T) {
	c := NewCenter()
	if _, err := c.Subscribe(Subscription{User: "u", Attribute: "population", Op: OpGT, Threshold: 0}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 10)
	for i := range rows {
		rows[i] = Row{Entity: fmt.Sprintf("e%d", i), Attribute: "population",
			Qualifier: "now", Value: fmt.Sprintf("%d", i+1), Conf: 1}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := len(c.Evaluate(rows))
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != len(rows) {
		t.Fatalf("concurrent Evaluate fired %d notifications, want %d", total, len(rows))
	}
	if h := c.History(); len(h) != len(rows) {
		t.Fatalf("history has %d entries, want %d", len(h), len(rows))
	}
}
