package extract

import (
	"strconv"
	"testing"

	"repro/internal/doc"
	"repro/internal/synth"
)

func cityDoc() *doc.Document {
	return &doc.Document{
		ID:    1,
		Title: "Madison, Wisconsin",
		Text: `Madison, Wisconsin

Madison is a city in the state of Wisconsin. The city was founded in 1856 and has a population of 233,209. It covers an area of 94.03 square miles.

{{Infobox settlement
| name = Madison
| location = Madison, Wisconsin
| population = 233209
| founded = 1856
}}

Climate

The average temperature in March is 36.0 degrees Fahrenheit.
The average temperature in September is 62.0 degrees Fahrenheit.
`,
	}
}

func TestTemperatureExtractor(t *testing.T) {
	e := NewTemperatureExtractor()
	fields := e.Extract(cityDoc())
	if len(fields) != 2 {
		t.Fatalf("got %d temperature fields: %+v", len(fields), fields)
	}
	if fields[0].Qualifier != "March" || fields[0].Value != "36.0" {
		t.Fatalf("field 0: %+v", fields[0])
	}
	if fields[1].Qualifier != "September" || fields[1].Value != "62.0" {
		t.Fatalf("field 1: %+v", fields[1])
	}
	if v, err := fields[1].Float(); err != nil || v != 62.0 {
		t.Fatalf("Float: %v %v", v, err)
	}
	if fields[0].Conf <= 0 || fields[0].Conf > 1 {
		t.Fatalf("confidence out of range: %v", fields[0].Conf)
	}
	if fields[0].Extractor != "temperature-rule" {
		t.Fatalf("extractor name: %q", fields[0].Extractor)
	}
}

func TestPopulationExtractor(t *testing.T) {
	fields := NewPopulationExtractor().Extract(cityDoc())
	if len(fields) != 1 {
		t.Fatalf("got %+v", fields)
	}
	if n, err := fields[0].Int(); err != nil || n != 233209 {
		t.Fatalf("Int: %v %v", n, err)
	}
}

func TestFoundedExtractor(t *testing.T) {
	fields := NewFoundedExtractor().Extract(cityDoc())
	if len(fields) != 1 || fields[0].Value != "1856" {
		t.Fatalf("got %+v", fields)
	}
}

func TestInfoboxExtractor(t *testing.T) {
	fields := NewInfoboxExtractor().Extract(cityDoc())
	byAttr := map[string]string{}
	for _, f := range fields {
		byAttr[f.Attribute] = f.Value
	}
	if byAttr["name"] != "Madison" {
		t.Fatalf("name: %+v", byAttr)
	}
	if byAttr["location"] != "Madison, Wisconsin" {
		t.Fatalf("location: %+v", byAttr)
	}
	if byAttr["population"] != "233209" {
		t.Fatalf("population: %+v", byAttr)
	}
	// No infobox -> no fields.
	if fields := NewInfoboxExtractor().Extract(&doc.Document{Text: "plain text"}); len(fields) != 0 {
		t.Fatalf("plain doc: %+v", fields)
	}
	// Unterminated infobox -> no fields, no panic.
	if fields := NewInfoboxExtractor().Extract(&doc.Document{Text: "{{Infobox settlement\n| a = b\n"}); len(fields) != 0 {
		t.Fatalf("unterminated: %+v", fields)
	}
}

func TestRegexExtractorSpans(t *testing.T) {
	d := cityDoc()
	for _, f := range NewTemperatureExtractor().Extract(d) {
		got := d.Slice(f.Span)
		if got == "" || f.Span.End <= f.Span.Start {
			t.Fatalf("bad span %v -> %q", f.Span, got)
		}
	}
}

func TestRegexExtractorBadPattern(t *testing.T) {
	if _, err := NewRegexExtractor("bad", "x", "([", 0.5); err == nil {
		t.Fatal("invalid regex must error")
	}
}

func TestDictionaryExtractor(t *testing.T) {
	e := NewDictionaryExtractor("states", "state", map[string]string{
		"Wisconsin":     "WI",
		"New York":      "NY",
		"New York City": "NYC",
	}, 0.8, false)
	d := &doc.Document{Title: "t", Text: "He moved from Wisconsin to New York City last year."}
	fields := e.Extract(d)
	if len(fields) != 2 {
		t.Fatalf("got %+v", fields)
	}
	if fields[0].Value != "WI" {
		t.Fatalf("field 0: %+v", fields[0])
	}
	// Longest match wins: "New York City" beats "New York".
	if fields[1].Value != "NYC" {
		t.Fatalf("field 1: %+v", fields[1])
	}
}

func TestDictionaryCaseFold(t *testing.T) {
	e := NewDictionaryExtractor("m", "city", map[string]string{"madison": "Madison"}, 0.8, true)
	d := &doc.Document{Text: "MADISON and Madison and madison."}
	if got := len(e.Extract(d)); got != 3 {
		t.Fatalf("case-folded matches = %d", got)
	}
	strict := NewDictionaryExtractor("m", "city", map[string]string{"Madison": "Madison"}, 0.8, false)
	if got := len(strict.Extract(d)); got != 1 {
		t.Fatalf("strict matches = %d", got)
	}
}

func TestPersonNameExtractor(t *testing.T) {
	d := &doc.Document{Title: "p", Text: "D. Smith met David Smith. And later Smith, David left."}
	fields := NewPersonNameExtractor().Extract(d)
	got := map[string]bool{}
	for _, f := range fields {
		got[f.Value] = true
	}
	for _, want := range []string{"D. Smith", "David Smith", "Smith, David"} {
		if !got[want] {
			t.Fatalf("missing %q in %v", want, fields)
		}
	}
}

func TestBornExtractor(t *testing.T) {
	d := &doc.Document{Text: "David Smith was born in 1962."}
	fields := NewBornExtractor().Extract(d)
	if len(fields) != 1 || fields[0].Value != "1962" {
		t.Fatalf("%+v", fields)
	}
}

func TestPipelineOnSynthCorpus(t *testing.T) {
	corpus, truth := synth.Generate(synth.Config{Seed: 5, Cities: 20, People: 5, Filler: 10, MentionsPerPerson: 2})
	p := DefaultCityPipeline()
	fields := p.ExtractAll(corpus.Docs())
	if len(fields) == 0 {
		t.Fatal("no fields extracted")
	}
	// Every city should have 12 temperature fields with correct values.
	temps := FilterAttribute(fields, "temperature")
	byEntity := ByEntity(temps)
	for _, city := range truth.Cities {
		got := byEntity[city.Title]
		if len(got) != 12 {
			t.Fatalf("%s: %d temperature fields", city.Title, len(got))
		}
		for _, f := range got {
			mi := monthIndex(f.Qualifier)
			if mi < 0 {
				t.Fatalf("bad qualifier %q", f.Qualifier)
			}
			v, err := f.Float()
			if err != nil {
				t.Fatal(err)
			}
			if v != city.MonthlyTemp[mi] {
				t.Fatalf("%s %s: extracted %v, truth %v", city.Title, f.Qualifier, v, city.MonthlyTemp[mi])
			}
		}
	}
	// Population extraction matches truth (prose + infobox may both fire).
	pops := FilterAttribute(fields, "population")
	popByEntity := ByEntity(pops)
	for _, city := range truth.Cities {
		found := false
		for _, f := range popByEntity[city.Title] {
			if n, err := f.Int(); err == nil && n == int64(city.Population) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: population %d not extracted (%v)", city.Title, city.Population, popByEntity[city.Title])
		}
	}
}

func monthIndex(m string) int {
	for i, name := range synth.Months {
		if name == m {
			return i
		}
	}
	return -1
}

func TestPipelineNames(t *testing.T) {
	p := DefaultCityPipeline()
	names := p.Names()
	if len(names) != 4 || names[0] != "infobox" {
		t.Fatalf("names: %v", names)
	}
}

func TestFilterAndGroupHelpers(t *testing.T) {
	fields := []Field{
		{Entity: "a", Attribute: "x"},
		{Entity: "a", Attribute: "y"},
		{Entity: "b", Attribute: "x"},
	}
	if got := FilterAttribute(fields, "x"); len(got) != 2 {
		t.Fatalf("filter: %v", got)
	}
	grouped := ByEntity(fields)
	if len(grouped["a"]) != 2 || len(grouped["b"]) != 1 {
		t.Fatalf("group: %v", grouped)
	}
}

func TestFieldNumericParseErrors(t *testing.T) {
	f := Field{Value: "not-a-number"}
	if _, err := f.Float(); err == nil {
		t.Fatal("Float should fail")
	}
	if _, err := f.Int(); err == nil {
		t.Fatal("Int should fail")
	}
	f2 := Field{Value: "1,234,567"}
	n, err := f2.Int()
	if err != nil || n != 1234567 {
		t.Fatalf("comma int: %v %v", n, err)
	}
	if s := strconv.FormatInt(n, 10); s != "1234567" {
		t.Fatal("parse")
	}
}
