// Package extract is the information-extraction (IE) operator library of
// the processing layer: extractors turn unstructured documents into
// attribute-value pairs with confidences ("month = September",
// "temperature = 70"), the simplest structured form the paper proposes.
// Operators include regular-expression extractors, dictionary matchers,
// contextual pattern rules, an infobox parser, and domain extractors for
// the weather/population/person attributes the paper's examples use.
package extract

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/doc"
)

// Field is one extracted attribute-value pair with provenance and
// confidence. Confidence is the extractor's own belief in (0, 1]; the
// uncertainty manager combines and updates it downstream.
type Field struct {
	DocID     doc.DocID
	DocTitle  string
	Entity    string // subject, e.g. "Madison, Wisconsin"
	Attribute string // e.g. "temperature"
	Value     string // surface value, e.g. "70.0"
	Qualifier string // optional context, e.g. the month for a temperature
	Span      doc.Span
	Conf      float64
	Extractor string // operator name, for provenance
}

// Float returns the value parsed as a float.
func (f *Field) Float() (float64, error) {
	return strconv.ParseFloat(strings.ReplaceAll(f.Value, ",", ""), 64)
}

// Int returns the value parsed as an integer.
func (f *Field) Int() (int64, error) {
	return strconv.ParseInt(strings.ReplaceAll(f.Value, ",", ""), 10, 64)
}

// Extractor is the IE operator interface: it pulls fields out of one
// document. Implementations must be safe for concurrent use.
type Extractor interface {
	// Name identifies the operator in provenance records.
	Name() string
	// Extract returns all fields found in d.
	Extract(d *doc.Document) []Field
}

// AttributeScoped is implemented by extractors that produce a known set of
// attributes; the incremental planner uses it to skip extractors that
// cannot contribute to a demanded attribute. A nil result means "any".
type AttributeScoped interface {
	OutAttributes() []string
}

// --- Regex extractor -------------------------------------------------------

// RegexExtractor extracts using a compiled pattern. Named groups "value"
// and "qualifier" select the captured pieces; if absent, group 1 is the
// value.
type RegexExtractor struct {
	name      string
	attribute string
	re        *regexp.Regexp
	conf      float64
	valueIdx  int
	qualIdx   int
}

// NewRegexExtractor compiles a regex operator. conf is the per-match
// confidence.
func NewRegexExtractor(name, attribute, pattern string, conf float64) (*RegexExtractor, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("extract: %s: %w", name, err)
	}
	e := &RegexExtractor{name: name, attribute: attribute, re: re, conf: conf, valueIdx: 1, qualIdx: -1}
	for i, g := range re.SubexpNames() {
		switch g {
		case "value":
			e.valueIdx = i
		case "qualifier":
			e.qualIdx = i
		}
	}
	return e, nil
}

// Name implements Extractor.
func (e *RegexExtractor) Name() string { return e.name }

// OutAttributes implements AttributeScoped.
func (e *RegexExtractor) OutAttributes() []string { return []string{e.attribute} }

// Extract implements Extractor.
func (e *RegexExtractor) Extract(d *doc.Document) []Field {
	var out []Field
	for _, m := range e.re.FindAllStringSubmatchIndex(d.Text, -1) {
		value := groupText(d.Text, m, e.valueIdx)
		if value == "" {
			continue
		}
		f := Field{
			DocID:     d.ID,
			DocTitle:  d.Title,
			Entity:    d.Title,
			Attribute: e.attribute,
			Value:     value,
			Span:      doc.Span{Start: m[0], End: m[1]},
			Conf:      e.conf,
			Extractor: e.name,
		}
		if e.qualIdx > 0 {
			f.Qualifier = groupText(d.Text, m, e.qualIdx)
		}
		out = append(out, f)
	}
	return out
}

func groupText(text string, m []int, idx int) string {
	if 2*idx+1 >= len(m) || m[2*idx] < 0 {
		return ""
	}
	return text[m[2*idx]:m[2*idx+1]]
}

// --- Dictionary extractor --------------------------------------------------

// DictionaryExtractor finds occurrences of known terms (gazetteer match).
// Matching is token-aligned and case-sensitive per entry configuration.
type DictionaryExtractor struct {
	name      string
	attribute string
	conf      float64
	entries   map[string]string // normalized surface -> canonical value
	maxWords  int
	caseFold  bool
}

// NewDictionaryExtractor builds a gazetteer operator. entries maps surface
// forms to canonical values (identical is fine). caseFold enables
// case-insensitive matching.
func NewDictionaryExtractor(name, attribute string, entries map[string]string, conf float64, caseFold bool) *DictionaryExtractor {
	e := &DictionaryExtractor{
		name: name, attribute: attribute, conf: conf,
		entries: make(map[string]string, len(entries)), caseFold: caseFold,
	}
	for surface, canon := range entries {
		key := surface
		if caseFold {
			key = strings.ToLower(surface)
		}
		e.entries[key] = canon
		words := len(strings.Fields(surface))
		if words > e.maxWords {
			e.maxWords = words
		}
	}
	return e
}

// Name implements Extractor.
func (e *DictionaryExtractor) Name() string { return e.name }

// OutAttributes implements AttributeScoped.
func (e *DictionaryExtractor) OutAttributes() []string { return []string{e.attribute} }

// Extract implements Extractor.
func (e *DictionaryExtractor) Extract(d *doc.Document) []Field {
	toks := doc.Tokenize(d.Text)
	var out []Field
	for i := 0; i < len(toks); i++ {
		// Longest match first.
		for w := min(e.maxWords, len(toks)-i); w >= 1; w-- {
			span := doc.Span{Start: toks[i].Span.Start, End: toks[i+w-1].Span.End}
			surface := d.Slice(span)
			key := surface
			if e.caseFold {
				key = strings.ToLower(surface)
			}
			if canon, ok := e.entries[key]; ok {
				out = append(out, Field{
					DocID: d.ID, DocTitle: d.Title, Entity: d.Title,
					Attribute: e.attribute, Value: canon, Span: span,
					Conf: e.conf, Extractor: e.name,
				})
				i += w - 1
				break
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Pattern rule extractor --------------------------------------------------

// RuleExtractor applies a contextual rule of the form
// "<prefix> X <infix> Y" where X/Y are captured token sequences; it is the
// hand-written counterpart of learned extraction patterns. Rules are
// expressed as a regex internally but carry a target attribute and a
// qualifier index, so this type mostly adds naming conventions; it exists
// to mirror the paper's "library of basic operators" with domain operators
// developers can register.
type RuleExtractor struct {
	*RegexExtractor
}

// NewTemperatureExtractor matches the climate-section sentences the synth
// corpus (and real Wikipedia prose) uses:
// "The average temperature in September is 62.0 degrees Fahrenheit."
func NewTemperatureExtractor() Extractor {
	re, err := NewRegexExtractor(
		"temperature-rule",
		"temperature",
		`(?i)average temperature in (?P<qualifier>January|February|March|April|May|June|July|August|September|October|November|December) is (?P<value>-?\d+(?:\.\d+)?) degrees`,
		0.92,
	)
	if err != nil {
		panic(err)
	}
	return &RuleExtractor{re}
}

// NewPopulationExtractor matches "has a population of 233,209" and infobox
// population attributes are handled by the infobox extractor.
func NewPopulationExtractor() Extractor {
	re, err := NewRegexExtractor(
		"population-rule",
		"population",
		`(?i)population of (?P<value>\d{1,3}(?:,\d{3})+|\d+)`,
		0.9,
	)
	if err != nil {
		panic(err)
	}
	return &RuleExtractor{re}
}

// NewFoundedExtractor matches "founded in 1856".
func NewFoundedExtractor() Extractor {
	re, err := NewRegexExtractor(
		"founded-rule",
		"founded",
		`(?i)founded in (?P<value>1[6-9]\d\d|20\d\d)`,
		0.85,
	)
	if err != nil {
		panic(err)
	}
	return &RuleExtractor{re}
}

// NewPersonNameExtractor finds person-name surface forms: "David Smith",
// "D. Smith", "Smith, David". Confidence is lower than rule extractors
// because capitalized bigrams are noisy.
func NewPersonNameExtractor() Extractor {
	re, err := NewRegexExtractor(
		"person-name",
		"person",
		`(?P<value>[A-Z][a-z]+ [A-Z][a-z]+|[A-Z]\. [A-Z][a-z]+|[A-Z][a-z]+, [A-Z][a-z]+)`,
		0.6,
	)
	if err != nil {
		panic(err)
	}
	return &RuleExtractor{re}
}

// NewBornExtractor matches "born in 1962".
func NewBornExtractor() Extractor {
	re, err := NewRegexExtractor(
		"born-rule",
		"born",
		`(?i)born in (?P<value>1[89]\d\d|20\d\d)`,
		0.88,
	)
	if err != nil {
		panic(err)
	}
	return &RuleExtractor{re}
}

// --- Infobox extractor -------------------------------------------------------

// InfoboxExtractor parses MediaWiki-style {{Infobox ...}} blocks into
// attribute-value fields. Attribute names come through verbatim (e.g.
// "location" vs "address"), which is exactly the semantic heterogeneity
// the integration layer must resolve.
type InfoboxExtractor struct {
	conf float64
}

// NewInfoboxExtractor returns the infobox operator.
func NewInfoboxExtractor() *InfoboxExtractor { return &InfoboxExtractor{conf: 0.97} }

// Name implements Extractor.
func (e *InfoboxExtractor) Name() string { return "infobox" }

var infoboxLine = regexp.MustCompile(`(?m)^\|\s*([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+?)\s*$`)

// Extract implements Extractor.
func (e *InfoboxExtractor) Extract(d *doc.Document) []Field {
	start := strings.Index(d.Text, "{{Infobox")
	if start < 0 {
		return nil
	}
	end := strings.Index(d.Text[start:], "}}")
	if end < 0 {
		return nil
	}
	block := d.Text[start : start+end]
	var out []Field
	for _, m := range infoboxLine.FindAllStringSubmatchIndex(block, -1) {
		attr := block[m[2]:m[3]]
		value := block[m[4]:m[5]]
		out = append(out, Field{
			DocID: d.ID, DocTitle: d.Title, Entity: d.Title,
			Attribute: strings.ToLower(attr), Value: value,
			Span:      doc.Span{Start: start + m[0], End: start + m[1]},
			Conf:      e.conf,
			Extractor: e.Name(),
		})
	}
	return out
}

// --- Composition -------------------------------------------------------------

// Pipeline runs a sequence of extractors over documents.
type Pipeline struct {
	extractors []Extractor
}

// NewPipeline builds a pipeline; order only affects output order.
func NewPipeline(extractors ...Extractor) *Pipeline {
	return &Pipeline{extractors: extractors}
}

// Names lists the operator names.
func (p *Pipeline) Names() []string {
	out := make([]string, len(p.extractors))
	for i, e := range p.extractors {
		out[i] = e.Name()
	}
	return out
}

// ExtractDoc runs all operators on one document.
func (p *Pipeline) ExtractDoc(d *doc.Document) []Field {
	var out []Field
	for _, e := range p.extractors {
		out = append(out, e.Extract(d)...)
	}
	return out
}

// ExtractAll runs the pipeline over every document sequentially. (The
// cluster package parallelizes this for the physical-layer experiments.)
func (p *Pipeline) ExtractAll(docs []*doc.Document) []Field {
	var out []Field
	for _, d := range docs {
		out = append(out, p.ExtractDoc(d)...)
	}
	return out
}

// ForAttributes returns the sub-pipeline of operators that can produce at
// least one of the given attributes. Unscoped operators (no
// AttributeScoped implementation, or a nil attribute list) are always
// kept, since they may yield anything.
func (p *Pipeline) ForAttributes(attrs ...string) *Pipeline {
	want := map[string]bool{}
	for _, a := range attrs {
		want[a] = true
	}
	sub := &Pipeline{}
	for _, e := range p.extractors {
		scoped, ok := e.(AttributeScoped)
		if !ok || scoped.OutAttributes() == nil {
			sub.extractors = append(sub.extractors, e)
			continue
		}
		for _, a := range scoped.OutAttributes() {
			if want[a] {
				sub.extractors = append(sub.extractors, e)
				break
			}
		}
	}
	return sub
}

// DefaultCityPipeline bundles the operators for the paper's Wikipedia city
// scenario: infobox, temperature, population, founded.
func DefaultCityPipeline() *Pipeline {
	return NewPipeline(
		NewInfoboxExtractor(),
		NewTemperatureExtractor(),
		NewPopulationExtractor(),
		NewFoundedExtractor(),
	)
}

// DefaultPersonPipeline bundles person-page operators.
func DefaultPersonPipeline() *Pipeline {
	return NewPipeline(
		NewPersonNameExtractor(),
		NewBornExtractor(),
	)
}

// FilterAttribute keeps only fields with the given attribute.
func FilterAttribute(fields []Field, attribute string) []Field {
	var out []Field
	for _, f := range fields {
		if f.Attribute == attribute {
			out = append(out, f)
		}
	}
	return out
}

// ByEntity groups fields by entity.
func ByEntity(fields []Field) map[string][]Field {
	out := map[string][]Field{}
	for _, f := range fields {
		out[f.Entity] = append(out[f.Entity], f)
	}
	return out
}
