package browse

import (
	"strings"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{Entity: "Madison, Wisconsin", Attribute: "temperature", Qualifier: "July", Value: "73"},
		{Entity: "Madison, Wisconsin", Attribute: "temperature", Qualifier: "January", Value: "19"},
		{Entity: "Madison, Wisconsin", Attribute: "population", Value: "233209"},
		{Entity: "Chicago, Illinois", Attribute: "temperature", Qualifier: "July", Value: "75"},
		{Entity: "Chicago, Illinois", Attribute: "population", Value: "2746388"},
		{Entity: "Chicago, Illinois", Attribute: "motto", Value: "Urbs in Horto"},
	}
}

func TestFacets(t *testing.T) {
	b := New(sampleRows())
	facets := b.Facets()
	if len(facets) != 3 {
		t.Fatalf("facets: %v", facets)
	}
	var entity Facet
	for _, f := range facets {
		if f.Name == "entity" {
			entity = f
		}
	}
	if len(entity.Values) != 2 || entity.Values[0].Count != 3 {
		t.Fatalf("entity facet: %+v", entity)
	}
	// Tie on count sorts by value: Chicago before Madison.
	if entity.Values[0].Value != "Chicago, Illinois" {
		t.Fatalf("facet order: %+v", entity.Values)
	}
}

func TestRefineAndBack(t *testing.T) {
	b := New(sampleRows())
	if err := b.Refine("entity", "Madison, Wisconsin"); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Rows()); got != 3 {
		t.Fatalf("after entity refine: %d rows", got)
	}
	if err := b.Refine("attribute", "temperature"); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Rows()); got != 2 {
		t.Fatalf("after attribute refine: %d rows", got)
	}
	if b.Path() != "entity=Madison, Wisconsin > attribute=temperature" {
		t.Fatalf("path: %q", b.Path())
	}
	// Facets recompute under filters.
	for _, f := range b.Facets() {
		if f.Name == "qualifier" && len(f.Values) != 2 {
			t.Fatalf("qualifier facet under filter: %+v", f)
		}
	}
	if !b.Back() {
		t.Fatal("Back failed")
	}
	if got := len(b.Rows()); got != 3 {
		t.Fatalf("after back: %d rows", got)
	}
	b.Back()
	if b.Back() {
		t.Fatal("Back on empty stack should be false")
	}
	if err := b.Refine("bogus", "x"); err == nil {
		t.Fatal("unknown facet should error")
	}
}

func TestHistogram(t *testing.T) {
	rows := []Row{
		{Entity: "a", Attribute: "temperature", Qualifier: "June", Value: "50"},
		{Entity: "a", Attribute: "temperature", Qualifier: "July", Value: "100"},
		{Entity: "a", Attribute: "temperature", Qualifier: "July", Value: "100"},
		{Entity: "a", Attribute: "motto", Qualifier: "x", Value: "not numeric"},
	}
	h := Histogram(rows, func(r Row) string { return r.Qualifier }, 20)
	lines := strings.Split(strings.TrimSpace(h), "\n")
	if len(lines) != 2 {
		t.Fatalf("histogram:\n%s", h)
	}
	if !strings.Contains(lines[0], "June") || !strings.Contains(lines[1], "July") {
		t.Fatalf("labels:\n%s", h)
	}
	// July (avg 100) has the full-width bar; June (50) half.
	julyBar := strings.Count(lines[1], "#")
	juneBar := strings.Count(lines[0], "#")
	if julyBar != 20 || juneBar != 10 {
		t.Fatalf("bars: june=%d july=%d\n%s", juneBar, julyBar, h)
	}
	if !strings.Contains(lines[1], "100.0") {
		t.Fatalf("value label missing:\n%s", h)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := Histogram([]Row{{Value: "text"}}, func(r Row) string { return "x" }, 0)
	if !strings.Contains(h, "no numeric data") {
		t.Fatalf("empty histogram: %q", h)
	}
}
