// Package browse implements the user layer's browsing and visualization
// modes: faceted navigation over the extracted EAV structure and simple
// text histograms — the "browsing, visualization" exploitation modes of
// the paper's DGE model, through which users refine an ill-defined
// information need before (or instead of) issuing a structured query.
package browse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Row mirrors the extracted EAV structure the user explores.
type Row struct {
	Entity    string
	Attribute string
	Qualifier string
	Value     string
	Conf      float64
}

// Facet is one navigable dimension with value counts.
type Facet struct {
	Name   string
	Values []FacetValue
}

// FacetValue is one bucket of a facet.
type FacetValue struct {
	Value string
	Count int
}

// Browser supports faceted exploration over a fixed row set with a
// refinement stack (drill down / back up).
type Browser struct {
	all     []Row
	filters []filter
}

type filter struct {
	facet string
	value string
}

// New returns a browser over rows.
func New(rows []Row) *Browser {
	return &Browser{all: rows}
}

// Rows returns the rows matching the current refinement stack.
func (b *Browser) Rows() []Row {
	var out []Row
	for _, r := range b.all {
		if b.matches(r) {
			out = append(out, r)
		}
	}
	return out
}

func (b *Browser) matches(r Row) bool {
	for _, f := range b.filters {
		switch f.facet {
		case "entity":
			if r.Entity != f.value {
				return false
			}
		case "attribute":
			if r.Attribute != f.value {
				return false
			}
		case "qualifier":
			if r.Qualifier != f.value {
				return false
			}
		}
	}
	return true
}

// Facets computes entity/attribute/qualifier facets over the current rows,
// each sorted by descending count then value.
func (b *Browser) Facets() []Facet {
	rows := b.Rows()
	count := func(get func(Row) string) []FacetValue {
		m := map[string]int{}
		for _, r := range rows {
			if v := get(r); v != "" {
				m[v]++
			}
		}
		out := make([]FacetValue, 0, len(m))
		for v, c := range m {
			out = append(out, FacetValue{Value: v, Count: c})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Count != out[j].Count {
				return out[i].Count > out[j].Count
			}
			return out[i].Value < out[j].Value
		})
		return out
	}
	return []Facet{
		{Name: "entity", Values: count(func(r Row) string { return r.Entity })},
		{Name: "attribute", Values: count(func(r Row) string { return r.Attribute })},
		{Name: "qualifier", Values: count(func(r Row) string { return r.Qualifier })},
	}
}

// Refine pushes a facet filter. Unknown facet names are an error.
func (b *Browser) Refine(facet, value string) error {
	switch facet {
	case "entity", "attribute", "qualifier":
		b.filters = append(b.filters, filter{facet: facet, value: value})
		return nil
	}
	return fmt.Errorf("browse: unknown facet %q", facet)
}

// Back pops the most recent refinement; false if the stack is empty.
func (b *Browser) Back() bool {
	if len(b.filters) == 0 {
		return false
	}
	b.filters = b.filters[:len(b.filters)-1]
	return true
}

// Path renders the current refinement stack ("entity=Madison > attribute=temperature").
func (b *Browser) Path() string {
	parts := make([]string, len(b.filters))
	for i, f := range b.filters {
		parts[i] = f.facet + "=" + f.value
	}
	return strings.Join(parts, " > ")
}

// Histogram renders a text bar chart of numeric values keyed by label —
// the paper's "visualization" mode at terminal fidelity. Bars scale to
// width characters; non-numeric values are skipped.
func Histogram(rows []Row, label func(Row) string, width int) string {
	if width <= 0 {
		width = 40
	}
	type bucket struct {
		label string
		sum   float64
		n     int
	}
	order := []string{}
	buckets := map[string]*bucket{}
	for _, r := range rows {
		v, err := strconv.ParseFloat(r.Value, 64)
		if err != nil {
			continue
		}
		l := label(r)
		bk, ok := buckets[l]
		if !ok {
			bk = &bucket{label: l}
			buckets[l] = bk
			order = append(order, l)
		}
		bk.sum += v
		bk.n++
	}
	if len(order) == 0 {
		return "(no numeric data)\n"
	}
	maxAvg := 0.0
	for _, l := range order {
		bk := buckets[l]
		if avg := bk.sum / float64(bk.n); avg > maxAvg {
			maxAvg = avg
		}
	}
	var b strings.Builder
	labelWidth := 0
	for _, l := range order {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for _, l := range order {
		bk := buckets[l]
		avg := bk.sum / float64(bk.n)
		bar := 0
		if maxAvg > 0 {
			bar = int(avg / maxAvg * float64(width))
		}
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "%-*s | %s %.1f\n", labelWidth, l, strings.Repeat("#", bar), avg)
	}
	return b.String()
}
