package search

import (
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/synth"
)

func smallCorpus() *doc.Corpus {
	c := doc.NewCorpus()
	c.Add(doc.Document{Title: "Madison, Wisconsin", Text: "Madison is the capital of Wisconsin. The average temperature in September is 62 degrees."})
	c.Add(doc.Document{Title: "Chicago", Text: "Chicago is a large city in Illinois on Lake Michigan."})
	c.Add(doc.Document{Title: "Cheese", Text: "Wisconsin is famous for cheese. Cheese cheese cheese."})
	c.Add(doc.Document{Title: "Empty-ish", Text: "..."})
	return c
}

func TestBuildAndStats(t *testing.T) {
	c := smallCorpus()
	idx := BuildIndex(c)
	if idx.N() != 4 {
		t.Fatalf("N = %d", idx.N())
	}
	if idx.Terms() == 0 {
		t.Fatal("no terms indexed")
	}
	if df := idx.DocFreq("wisconsin"); df != 2 {
		t.Fatalf("DocFreq(wisconsin) = %d", df)
	}
	if df := idx.DocFreq("WISCONSIN"); df != 2 {
		t.Fatal("DocFreq must normalize case")
	}
	if df := idx.DocFreq("zebra"); df != 0 {
		t.Fatalf("DocFreq(zebra) = %d", df)
	}
}

func TestSearchRanking(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	hits := idx.Search("madison temperature", 10, BM25)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("top hit = %q", hits[0].Title)
	}
	if hits[0].Score <= 0 {
		t.Fatal("score must be positive")
	}
	// The snippet should contain a query term.
	if !strings.Contains(strings.ToLower(hits[0].Snippet), "temperature") &&
		!strings.Contains(strings.ToLower(hits[0].Snippet), "madison") {
		t.Fatalf("snippet %q lacks query terms", hits[0].Snippet)
	}
}

func TestSearchTFRepetitionSaturates(t *testing.T) {
	// BM25 saturates term frequency: the cheese-spam document should not
	// dominate a multi-term query mentioning wisconsin + capital.
	idx := BuildIndex(smallCorpus())
	hits := idx.Search("wisconsin capital", 10, BM25)
	if len(hits) == 0 || hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestSearchTFIDF(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	hits := idx.Search("cheese", 10, TFIDF)
	if len(hits) != 1 || hits[0].Title != "Cheese" {
		t.Fatalf("tfidf hits: %+v", hits)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	if hits := idx.Search("", 10, BM25); hits != nil {
		t.Fatal("empty query should return nil")
	}
	if hits := idx.Search("madison", 0, BM25); hits != nil {
		t.Fatal("k=0 should return nil")
	}
	if hits := idx.Search("zzz qqq", 10, BM25); len(hits) != 0 {
		t.Fatal("no-match query should return empty")
	}
	hits := idx.Search("wisconsin", 1, BM25)
	if len(hits) != 1 {
		t.Fatalf("k=1 returned %d", len(hits))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	c := doc.NewCorpus()
	c.Add(doc.Document{Title: "A", Text: "identical content here"})
	c.Add(doc.Document{Title: "B", Text: "identical content here"})
	idx := BuildIndex(c)
	h1 := idx.Search("identical content", 2, BM25)
	h2 := idx.Search("identical content", 2, BM25)
	if h1[0].DocID != h2[0].DocID {
		t.Fatal("tie-break not deterministic")
	}
	if h1[0].DocID > h1[1].DocID {
		t.Fatal("ties should order by DocID")
	}
}

func TestPhraseSearch(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	hits := idx.PhraseSearch("average temperature", 10)
	if len(hits) != 1 || hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("phrase hits: %+v", hits)
	}
	// Words present but not adjacent: no hit.
	hits = idx.PhraseSearch("temperature average", 10)
	if len(hits) != 0 {
		t.Fatalf("reversed phrase should not match: %+v", hits)
	}
	if hits := idx.PhraseSearch("", 10); hits != nil {
		t.Fatal("empty phrase")
	}
	if hits := idx.PhraseSearch("unknown words", 10); len(hits) != 0 {
		t.Fatal("unknown phrase should be empty")
	}
}

func TestSearchOnSynthCorpus(t *testing.T) {
	corpus, _ := synth.Generate(synth.Config{Seed: 3, Cities: 30, People: 10, Filler: 20, MentionsPerPerson: 2})
	idx := BuildIndex(corpus)
	hits := idx.Search("average temperature Madison Wisconsin", 5, BM25)
	if len(hits) == 0 {
		t.Fatal("no hits on synth corpus")
	}
	if hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("top hit = %q", hits[0].Title)
	}
	// The crucial IR limitation the paper motivates: the top hit contains
	// the words, but nothing in the hit list IS the average — that is what
	// the structured pipeline computes in E1.
	for _, h := range hits {
		if strings.Contains(h.Snippet, "average of") {
			t.Fatal("keyword search should not compute aggregates")
		}
	}
}

func TestQueryTerms(t *testing.T) {
	got := QueryTerms("Average Temperature, Madison!")
	want := []string{"average", "temperature", "madison"}
	if len(got) != len(want) {
		t.Fatalf("QueryTerms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryTerms = %v", got)
		}
	}
}

func TestConcurrentSearch(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				idx.Search("wisconsin cheese madison", 3, BM25)
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
