// Package search is the IR substrate: an inverted index over a corpus with
// BM25 and TF-IDF ranking plus snippet generation. It plays two roles in
// the reproduction: (1) the keyword-search baseline that Section 2 of the
// paper argues cannot answer structured questions like "the average
// March-September temperature in Madison", and (2) the keyword entry mode
// of the user layer, from which queries are reformulated into structured
// ones.
package search

import (
	"container/heap"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/doc"
)

// Ranking selects the scoring function.
type Ranking int

const (
	// BM25 is Okapi BM25 with k1=1.2, b=0.75.
	BM25 Ranking = iota
	// TFIDF is ln-scaled term frequency times inverse document frequency.
	TFIDF
)

const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// posting records one document's statistics for a term.
type posting struct {
	docID doc.DocID
	tf    int
	// positions of the term (token index) for phrase/snippet logic.
	positions []int
}

// Index is an inverted index. Build once, then query concurrently.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	docLen   map[doc.DocID]int
	titles   map[doc.DocID]string
	corpus   *doc.Corpus
	totalLen int
	n        int
}

// NewIndex returns an empty index bound to a corpus (for snippeting).
func NewIndex(corpus *doc.Corpus) *Index {
	return &Index{
		postings: make(map[string][]posting),
		docLen:   make(map[doc.DocID]int),
		titles:   make(map[doc.DocID]string),
		corpus:   corpus,
	}
}

// BuildIndex indexes every document in the corpus.
func BuildIndex(corpus *doc.Corpus) *Index {
	idx := NewIndex(corpus)
	for _, d := range corpus.Docs() {
		idx.Add(d)
	}
	return idx
}

// Add indexes one document. Title terms are indexed too (titles matter for
// entity-style queries like "Madison Wisconsin").
func (idx *Index) Add(d *doc.Document) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	terms := map[string][]int{}
	pos := 0
	for _, tk := range doc.Tokenize(d.Title) {
		t := doc.NormalizeTerm(tk.Text)
		if t != "" {
			terms[t] = append(terms[t], pos)
			pos++
		}
	}
	for _, tk := range doc.Tokenize(d.Text) {
		t := doc.NormalizeTerm(tk.Text)
		if t != "" {
			terms[t] = append(terms[t], pos)
			pos++
		}
	}
	for t, positions := range terms {
		idx.postings[t] = append(idx.postings[t], posting{docID: d.ID, tf: len(positions), positions: positions})
	}
	idx.docLen[d.ID] = pos
	idx.titles[d.ID] = d.Title
	idx.totalLen += pos
	idx.n++
}

// N returns the number of indexed documents.
func (idx *Index) N() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return idx.n
}

// Terms returns the number of distinct terms.
func (idx *Index) Terms() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.postings)
}

// DocFreq returns how many documents contain term.
func (idx *Index) DocFreq(term string) int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	return len(idx.postings[doc.NormalizeTerm(term)])
}

// Hit is one ranked search result.
type Hit struct {
	DocID   doc.DocID
	Title   string
	Score   float64
	Snippet string
}

// Search ranks documents for a free-text query and returns the top k.
func (idx *Index) Search(query string, k int, ranking Ranking) []Hit {
	terms := QueryTerms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	avgLen := 1.0
	if idx.n > 0 {
		avgLen = float64(idx.totalLen) / float64(idx.n)
	}
	scores := map[doc.DocID]float64{}
	for _, term := range terms {
		plist := idx.postings[term]
		if len(plist) == 0 {
			continue
		}
		df := float64(len(plist))
		var idf float64
		switch ranking {
		case BM25:
			idf = math.Log(1 + (float64(idx.n)-df+0.5)/(df+0.5))
		case TFIDF:
			idf = math.Log(float64(idx.n+1) / (df + 1))
		}
		for _, p := range plist {
			tf := float64(p.tf)
			var s float64
			switch ranking {
			case BM25:
				dl := float64(idx.docLen[p.docID])
				s = idf * (tf * (bm25K1 + 1)) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
			case TFIDF:
				s = idf * (1 + math.Log(tf))
			}
			scores[p.docID] += s
		}
	}
	// Bounded top-k selection: a min-heap of the k best hits seen so far
	// (worst at the root), O(n log k) instead of sorting every scored
	// document. Tie order matches the previous full sort: higher score
	// first, then lower DocID.
	h := make(hitHeap, 0, k)
	for id, s := range scores {
		hit := Hit{DocID: id, Score: s}
		if len(h) < k {
			hit.Title = idx.titles[id]
			heap.Push(&h, hit)
			continue
		}
		if hitBeats(hit, h[0]) {
			hit.Title = idx.titles[id]
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	hits := make([]Hit, len(h))
	for i := len(hits) - 1; i >= 0; i-- {
		hits[i] = heap.Pop(&h).(Hit)
	}
	for i := range hits {
		hits[i].Snippet = idx.snippet(hits[i].DocID, terms)
	}
	return hits
}

// hitBeats reports whether a outranks b: higher score wins, ties go to the
// lower DocID (deterministic).
func hitBeats(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// hitHeap is a min-heap by rank: the root is the worst of the kept hits.
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return hitBeats(h[j], h[i]) }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// QueryTerms normalizes a free-text query into index terms.
func QueryTerms(query string) []string {
	var out []string
	for _, tk := range doc.Tokenize(query) {
		t := doc.NormalizeTerm(tk.Text)
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// snippet extracts a sentence containing the most query terms.
func (idx *Index) snippet(id doc.DocID, terms []string) string {
	if idx.corpus == nil {
		return ""
	}
	d := idx.corpus.Get(id)
	if d == nil {
		return ""
	}
	want := map[string]bool{}
	for _, t := range terms {
		want[t] = true
	}
	best := ""
	bestScore := -1
	for _, sp := range doc.Sentences(d.Text) {
		sent := d.Slice(sp)
		score := 0
		for _, tk := range doc.Tokenize(sent) {
			if want[doc.NormalizeTerm(tk.Text)] {
				score++
			}
		}
		if score > bestScore {
			bestScore = score
			best = sent
		}
	}
	if len(best) > 200 {
		best = best[:200] + "..."
	}
	return strings.TrimSpace(best)
}

// PhraseSearch returns documents containing the exact normalized phrase,
// using positional postings.
func (idx *Index) PhraseSearch(phrase string, k int) []Hit {
	terms := QueryTerms(phrase)
	if len(terms) == 0 {
		return nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	// Candidate docs: intersection over all terms.
	candidates := map[doc.DocID][][]int{}
	for i, term := range terms {
		plist := idx.postings[term]
		next := map[doc.DocID][][]int{}
		for _, p := range plist {
			if i == 0 {
				next[p.docID] = [][]int{p.positions}
				continue
			}
			if prev, ok := candidates[p.docID]; ok {
				next[p.docID] = append(prev, p.positions)
			}
		}
		candidates = next
		if len(candidates) == 0 {
			return nil
		}
	}
	var hits []Hit
	for id, positionLists := range candidates {
		if len(positionLists) != len(terms) {
			continue
		}
		if hasConsecutiveRun(positionLists) {
			hits = append(hits, Hit{DocID: id, Title: idx.titles[id], Score: 1})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].DocID < hits[j].DocID })
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	for i := range hits {
		hits[i].Snippet = idx.snippet(hits[i].DocID, terms)
	}
	return hits
}

// hasConsecutiveRun reports whether there exist positions p0 < p1 < ... with
// p[i+1] = p[i]+1 across the per-term position lists.
func hasConsecutiveRun(lists [][]int) bool {
	starts := lists[0]
	for _, s := range starts {
		ok := true
		for i := 1; i < len(lists); i++ {
			if !containsInt(lists[i], s+i) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}
