package search

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/doc"
)

// TestTopKMatchesFullSort checks that the bounded-heap selection returns
// exactly what sorting every scored hit would: same members, same order,
// deterministic ties, at every k.
func TestTopKMatchesFullSort(t *testing.T) {
	corpus := doc.NewCorpus()
	// Many documents with overlapping term sets so scores repeat and tie.
	for i := 0; i < 60; i++ {
		text := "alpha beta"
		switch i % 3 {
		case 1:
			text = "alpha beta alpha"
		case 2:
			text = "beta gamma"
		}
		corpus.Add(doc.Document{Title: fmt.Sprintf("doc-%02d", i), Text: text})
	}
	idx := BuildIndex(corpus)

	for _, ranking := range []Ranking{BM25, TFIDF} {
		// Full ranking via a k no smaller than the corpus.
		all := idx.Search("alpha beta", corpus.Len(), ranking)
		if len(all) == 0 {
			t.Fatal("no hits")
		}
		// The reference order: score desc, DocID asc.
		ref := append([]Hit(nil), all...)
		sort.SliceStable(ref, func(i, j int) bool { return hitBeats(ref[i], ref[j]) })
		for i := range all {
			if all[i].DocID != ref[i].DocID {
				t.Fatalf("ranking %v: full result not in rank order at %d", ranking, i)
			}
		}
		for _, k := range []int{1, 2, 3, 5, 17, len(all)} {
			got := idx.Search("alpha beta", k, ranking)
			if len(got) != k && len(got) != len(all) {
				t.Fatalf("ranking %v k=%d: got %d hits", ranking, k, len(got))
			}
			for i := range got {
				if got[i].DocID != all[i].DocID {
					t.Fatalf("ranking %v k=%d: hit %d = %v, want %v", ranking, k, i, got[i].DocID, all[i].DocID)
				}
				if math.Abs(got[i].Score-all[i].Score) > 1e-12 {
					t.Fatalf("ranking %v k=%d: score mismatch at %d", ranking, k, i)
				}
				if got[i].Title == "" || got[i].Snippet == "" {
					t.Fatalf("ranking %v k=%d: hit %d missing title/snippet", ranking, k, i)
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	corpus := doc.NewCorpus()
	corpus.Add(doc.Document{Title: "only", Text: "solitary term here"})
	idx := BuildIndex(corpus)
	if hits := idx.Search("solitary", 0, BM25); hits != nil {
		t.Fatal("k=0 should return nil")
	}
	if hits := idx.Search("solitary", 10, BM25); len(hits) != 1 {
		t.Fatalf("k larger than hit count: %d", len(hits))
	}
	if hits := idx.Search("absent", 5, BM25); len(hits) != 0 {
		t.Fatal("no-match query should return empty")
	}
}
