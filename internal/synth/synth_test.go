package synth

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	c1, t1 := Generate(cfg)
	c2, t2 := Generate(cfg)
	if c1.Len() != c2.Len() {
		t.Fatalf("lengths differ: %d vs %d", c1.Len(), c2.Len())
	}
	for i, d := range c1.Docs() {
		if d.Text != c2.Docs()[i].Text || d.Title != c2.Docs()[i].Title {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
	if len(t1.Cities) != len(t2.Cities) {
		t.Fatal("truth differs")
	}
}

func TestGenerateIncludesMadison(t *testing.T) {
	c, truth := Generate(DefaultConfig(1))
	d := c.FindByTitle("Madison, Wisconsin")
	if d == nil {
		t.Fatal("Madison article missing")
	}
	if !strings.Contains(d.Text, "The average temperature in September is 62.0 degrees Fahrenheit.") {
		t.Fatalf("Madison September line missing; text:\n%s", d.Text)
	}
	city := truth.CityTruth("Madison, Wisconsin")
	if city == nil {
		t.Fatal("Madison truth missing")
	}
	if city.Population != 233209 {
		t.Fatalf("Madison population = %d", city.Population)
	}
	// March..September average (indexes 2..8): (36+48+59+69+73+71+62)/7.
	want := (36.0 + 48 + 59 + 69 + 73 + 71 + 62) / 7
	if got := city.AvgTemp(2, 8); got != want {
		t.Fatalf("AvgTemp(2,8) = %v, want %v", got, want)
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := Config{Seed: 7, Cities: 10, People: 5, Filler: 3, MentionsPerPerson: 2}
	c, truth := Generate(cfg)
	want := 10 + 5*2 + 3
	if c.Len() != want {
		t.Fatalf("corpus has %d docs, want %d", c.Len(), want)
	}
	if len(truth.Cities) != 10 || len(truth.People) != 5 {
		t.Fatalf("truth sizes: %d cities, %d people", len(truth.Cities), len(truth.People))
	}
	for _, p := range truth.People {
		if len(p.Mentions) != 2 {
			t.Fatalf("person %s has %d mentions", p.Canonical, len(p.Mentions))
		}
		if p.Mentions[0].Surface != p.Canonical {
			t.Fatalf("first mention must be canonical, got %q", p.Mentions[0].Surface)
		}
	}
}

func TestGenerateDavidSmithExists(t *testing.T) {
	_, truth := Generate(DefaultConfig(3))
	if truth.People[0].Canonical != "David Smith" {
		t.Fatalf("first person = %q, want David Smith", truth.People[0].Canonical)
	}
}

func TestCorruptions(t *testing.T) {
	cfg := Config{Seed: 11, Cities: 40, People: 2, Filler: 0, MentionsPerPerson: 1, CorruptFrac: 0.2}
	c, truth := Generate(cfg)
	if len(truth.Corruptions) == 0 {
		t.Fatal("expected corruptions")
	}
	for _, corr := range truth.Corruptions {
		if corr.DocTitle == "Madison, Wisconsin" {
			t.Fatal("Madison must never be corrupted")
		}
		if corr.Value < 135 {
			t.Fatalf("corrupt value %v should be an outlier", corr.Value)
		}
		d := c.FindByTitle(corr.DocTitle)
		if d == nil {
			t.Fatalf("corrupted doc %q missing", corr.DocTitle)
		}
		if !strings.Contains(d.Text, corr.Month) {
			t.Fatalf("corrupted doc lacks month %s", corr.Month)
		}
	}
}

func TestInfoboxNoise(t *testing.T) {
	cfg := Config{Seed: 5, Cities: 60, People: 1, Filler: 0, MentionsPerPerson: 1, InfoboxNoise: true}
	c, _ := Generate(cfg)
	sawLocation, sawAddress := false, false
	for _, d := range c.Docs() {
		if strings.Contains(d.Text, "| location =") {
			sawLocation = true
		}
		if strings.Contains(d.Text, "| address =") {
			sawAddress = true
		}
	}
	if !sawLocation || !sawAddress {
		t.Fatalf("attribute noise not exercised: location=%v address=%v", sawLocation, sawAddress)
	}
}

func TestMutateChurn(t *testing.T) {
	c, _ := Generate(Config{Seed: 2, Cities: 30, People: 0, Filler: 10, MentionsPerPerson: 1})
	texts := Mutate(c, 0.5, 99)
	if len(texts) != c.Len() {
		t.Fatalf("Mutate returned %d texts, want %d", len(texts), c.Len())
	}
	changed := 0
	for _, d := range c.Docs() {
		if texts[d.Title] != d.Text {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no documents changed at churn 0.5")
	}
	if changed == c.Len() {
		t.Fatal("all documents changed at churn 0.5; expected partial churn")
	}
	// Zero churn leaves everything identical.
	same := Mutate(c, 0, 99)
	for _, d := range c.Docs() {
		if same[d.Title] != d.Text {
			t.Fatal("zero churn must not modify documents")
		}
	}
}

func TestAvgTempEmptyRange(t *testing.T) {
	c := City{}
	if got := c.AvgTemp(5, 4); got != 0 {
		t.Fatalf("empty range avg = %v, want 0", got)
	}
}

func TestSeasonFactorShape(t *testing.T) {
	if seasonFactor(6) != 1 {
		t.Fatalf("July factor = %v", seasonFactor(6))
	}
	if seasonFactor(0) != 0 {
		t.Fatalf("January factor = %v", seasonFactor(0))
	}
	if seasonFactor(3) <= seasonFactor(1) {
		t.Fatal("season factor should increase toward July")
	}
}
