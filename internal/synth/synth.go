// Package synth generates a deterministic Wikipedia-like corpus: city
// articles with weather infoboxes, people pages with name variants, and
// filler articles. It substitutes for the Wikipedia data the paper's
// examples are narrated over (the Madison average-temperature query, the
// "David Smith" / "D. Smith" entity-resolution example, and the 135-degree
// outlier the semantic debugger should flag), providing exact ground truth
// so experiments can score extraction, integration, and query accuracy.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/doc"
)

// Months in article order.
var Months = []string{
	"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December",
}

// City is the ground truth for a generated city article.
type City struct {
	Name       string
	State      string
	Population int
	// MonthlyTemp[i] is the mean temperature (Fahrenheit) for Months[i].
	MonthlyTemp [12]float64
	Founded     int
	AreaSqMi    float64
	Title       string // article title, "Name, State"
}

// Person is the ground truth for a generated person article. Each person
// may be mentioned under several surface forms across documents; Mentions
// records every (docTitle, surface) pair emitted.
type Person struct {
	ID        int
	First     string
	Last      string
	City      string // home city title
	Born      int
	Mentions  []Mention
	Canonical string // "First Last"
}

// Mention records one occurrence of a person reference in a document.
type Mention struct {
	DocTitle string
	Surface  string
}

// Truth bundles the ground truth of a generated corpus.
type Truth struct {
	Cities []City
	People []Person
	// Corruptions lists injected semantic errors: document title and the
	// corrupted value that a semantic debugger should flag.
	Corruptions []Corruption
}

// Corruption is an injected outlier, e.g. a 135-degree July temperature.
type Corruption struct {
	DocTitle string
	Field    string // "temperature" or "population"
	Month    string // for temperature corruptions
	Value    float64
}

// CityTruth returns the city with the given article title, or nil.
func (t *Truth) CityTruth(title string) *City {
	for i := range t.Cities {
		if t.Cities[i].Title == title {
			return &t.Cities[i]
		}
	}
	return nil
}

// AvgTemp returns the average of the ground-truth monthly temperatures of
// the named city over month indexes [from, to] inclusive (0-based).
func (c *City) AvgTemp(from, to int) float64 {
	sum := 0.0
	n := 0
	for i := from; i <= to && i < 12; i++ {
		sum += c.MonthlyTemp[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Config controls corpus generation.
type Config struct {
	Seed   int64
	Cities int // number of city articles (Madison always included)
	People int // number of distinct people
	Filler int // number of filler articles
	// MentionsPerPerson controls how many documents mention each person
	// (>=1); extra mentions use abbreviated or noisy surface forms, which
	// is what makes entity resolution non-trivial.
	MentionsPerPerson int
	// CorruptFrac injects semantic outliers into this fraction of city
	// articles (0 disables).
	CorruptFrac float64
	// InfoboxNoise, when true, randomly varies infobox attribute names
	// (e.g. "location" vs "address") to exercise schema matching.
	InfoboxNoise bool
}

// DefaultConfig returns a small default corpus configuration.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Cities: 50, People: 40, Filler: 30, MentionsPerPerson: 3}
}

var stateNames = []string{
	"Wisconsin", "Illinois", "Minnesota", "Iowa", "Michigan", "Ohio",
	"Indiana", "Missouri", "Kansas", "Nebraska", "Colorado", "Texas",
	"Oregon", "Washington", "California", "New York", "Vermont", "Maine",
	"Georgia", "Florida", "Arizona", "Utah", "Nevada", "Montana",
}

var cityPrefix = []string{
	"Spring", "Oak", "Maple", "River", "Lake", "Cedar", "Pine", "Fair",
	"Green", "Stone", "Clear", "North", "South", "East", "West", "Grand",
	"Silver", "Golden", "Red", "Blue", "Elm", "Ash", "Birch", "Willow",
}

var citySuffix = []string{
	"field", "ville", "ton", "burg", "wood", "port", "dale", "view",
	"brook", "haven", "ridge", "mont", "crest", "side", "ford", "creek",
}

var firstNames = []string{
	"David", "Sarah", "Michael", "Jennifer", "Robert", "Linda", "James",
	"Patricia", "John", "Barbara", "Daniel", "Susan", "Mark", "Karen",
	"Paul", "Nancy", "Thomas", "Lisa", "Steven", "Betty", "Kevin", "Helen",
	"Brian", "Sandra", "Edward", "Donna", "Ronald", "Carol", "Anthony", "Ruth",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
}

var fillerTopics = []string{
	"limestone quarrying", "railroad history", "glacial geology",
	"prairie restoration", "cheese production", "river navigation",
	"municipal governance", "public libraries", "street car systems",
	"agricultural fairs", "brewing traditions", "ice harvesting",
}

// Generate produces a corpus and its ground truth from cfg. The output is
// deterministic for a given configuration.
func Generate(cfg Config) (*doc.Corpus, *Truth) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := doc.NewCorpus()
	truth := &Truth{}

	cities := makeCities(rng, cfg.Cities)
	truth.Cities = cities

	people := makePeople(rng, cfg.People, cities)

	// Decide corruption targets up front so article text embeds them.
	corrupt := map[int]bool{}
	if cfg.CorruptFrac > 0 {
		n := int(float64(len(cities)) * cfg.CorruptFrac)
		for len(corrupt) < n && len(corrupt) < len(cities) {
			i := rng.Intn(len(cities))
			if cities[i].Title == "Madison, Wisconsin" {
				continue // keep the canonical example clean
			}
			corrupt[i] = true
		}
	}

	for i := range cities {
		c := &cities[i]
		var corr *Corruption
		if corrupt[i] {
			mi := rng.Intn(12)
			corr = &Corruption{
				DocTitle: c.Title,
				Field:    "temperature",
				Month:    Months[mi],
				Value:    135 + float64(rng.Intn(40)),
			}
			truth.Corruptions = append(truth.Corruptions, *corr)
		}
		text := cityArticle(rng, c, corr, cfg.InfoboxNoise)
		corpus.Add(doc.Document{
			Title:  c.Title,
			Source: "synth://city/" + strings.ReplaceAll(c.Title, " ", "_"),
			Text:   text,
			Meta:   map[string]string{"kind": "city"},
		})
	}

	mentions := cfg.MentionsPerPerson
	if mentions < 1 {
		mentions = 1
	}
	for i := range people {
		p := &people[i]
		for m := 0; m < mentions; m++ {
			surface := surfaceForm(rng, p, m)
			// The person id keeps titles unique even when two generated
			// people share a name (as real wikis disambiguate).
			title := fmt.Sprintf("%s (profile %d.%d)", surface, p.ID, m)
			text := personArticle(rng, p, surface, m)
			corpus.Add(doc.Document{
				Title:  title,
				Source: "synth://person/" + fmt.Sprint(p.ID) + "/" + fmt.Sprint(m),
				Text:   text,
				Meta:   map[string]string{"kind": "person"},
			})
			p.Mentions = append(p.Mentions, Mention{DocTitle: title, Surface: surface})
		}
	}
	truth.People = people

	for i := 0; i < cfg.Filler; i++ {
		topic := fillerTopics[rng.Intn(len(fillerTopics))]
		title := fmt.Sprintf("History of %s (%d)", topic, i)
		corpus.Add(doc.Document{
			Title:  title,
			Source: "synth://filler/" + fmt.Sprint(i),
			Text:   fillerArticle(rng, topic),
			Meta:   map[string]string{"kind": "filler"},
		})
	}
	return corpus, truth
}

func makeCities(rng *rand.Rand, n int) []City {
	cities := make([]City, 0, n)
	// Madison first, with fixed well-known-ish climatology so the §2
	// walkthrough has a stable expected answer.
	madison := City{
		Name: "Madison", State: "Wisconsin", Population: 233209,
		Founded: 1856, AreaSqMi: 94.03,
		MonthlyTemp: [12]float64{19, 24, 36, 48, 59, 69, 73, 71, 62, 50, 36, 23},
		Title:       "Madison, Wisconsin",
	}
	cities = append(cities, madison)
	seen := map[string]bool{madison.Title: true}
	for len(cities) < n {
		name := cityPrefix[rng.Intn(len(cityPrefix))] + citySuffix[rng.Intn(len(citySuffix))]
		state := stateNames[rng.Intn(len(stateNames))]
		title := name + ", " + state
		if seen[title] {
			continue
		}
		seen[title] = true
		c := City{
			Name: name, State: state,
			Population: 20000 + rng.Intn(2000000),
			Founded:    1780 + rng.Intn(180),
			AreaSqMi:   5 + rng.Float64()*200,
			Title:      title,
		}
		// A plausible seasonal curve: cold base + sinusoid-ish ramp.
		base := 10 + rng.Float64()*35
		amp := 20 + rng.Float64()*35
		for m := 0; m < 12; m++ {
			seasonal := amp * seasonFactor(m)
			c.MonthlyTemp[m] = round1(base + seasonal + rng.Float64()*4 - 2)
		}
		cities = append(cities, c)
	}
	return cities
}

// seasonFactor approximates a northern-hemisphere season curve peaking in
// July (index 6), in [0,1].
func seasonFactor(month int) float64 {
	d := month - 6
	if d < 0 {
		d = -d
	}
	return 1 - float64(d)/6.0
}

func round1(f float64) float64 { return float64(int(f*10+0.5)) / 10 }

func makePeople(rng *rand.Rand, n int, cities []City) []Person {
	people := make([]Person, 0, n)
	// Guarantee the paper's example pair exists.
	people = append(people, Person{
		ID: 0, First: "David", Last: "Smith",
		City: cities[0].Title, Born: 1962, Canonical: "David Smith",
	})
	for i := 1; i < n; i++ {
		f := firstNames[rng.Intn(len(firstNames))]
		l := lastNames[rng.Intn(len(lastNames))]
		people = append(people, Person{
			ID: i, First: f, Last: l,
			City:      cities[rng.Intn(len(cities))].Title,
			Born:      1930 + rng.Intn(70),
			Canonical: f + " " + l,
		})
	}
	return people
}

// surfaceForm returns a surface realization of the person's name. Mention 0
// is always the canonical full name; later mentions abbreviate or reorder.
func surfaceForm(rng *rand.Rand, p *Person, mention int) string {
	if mention == 0 {
		return p.Canonical
	}
	switch rng.Intn(4) {
	case 0:
		return p.First[:1] + ". " + p.Last // "D. Smith"
	case 1:
		return p.Last + ", " + p.First // "Smith, David"
	case 2:
		return p.First[:1] + ". " + p.Last // again: abbreviations dominate
	default:
		return p.First + " " + p.Last
	}
}

func cityArticle(rng *rand.Rand, c *City, corr *Corruption, noisyAttrs bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", c.Title)
	fmt.Fprintf(&b, "%s is a city in the state of %s. ", c.Name, c.State)
	fmt.Fprintf(&b, "The city was founded in %d and has a population of %d. ",
		c.Founded, c.Population)
	fmt.Fprintf(&b, "It covers an area of %.2f square miles.\n\n", c.AreaSqMi)

	// Infobox block, MediaWiki-flavoured. Attribute-name noise exercises
	// the schema matcher ("location" vs "address").
	locAttr := "location"
	popAttr := "population"
	if noisyAttrs && rng.Intn(2) == 0 {
		locAttr = "address"
	}
	if noisyAttrs && rng.Intn(3) == 0 {
		popAttr = "pop_total"
	}
	fmt.Fprintf(&b, "{{Infobox settlement\n")
	fmt.Fprintf(&b, "| name = %s\n", c.Name)
	fmt.Fprintf(&b, "| %s = %s, %s\n", locAttr, c.Name, c.State)
	fmt.Fprintf(&b, "| %s = %d\n", popAttr, c.Population)
	fmt.Fprintf(&b, "| founded = %d\n", c.Founded)
	fmt.Fprintf(&b, "| area_sq_mi = %.2f\n", c.AreaSqMi)
	fmt.Fprintf(&b, "}}\n\n")

	// Climate section: a weather table with one line per month, the form
	// the §2 example extracts ("month = September", "temperature = 70").
	fmt.Fprintf(&b, "Climate\n\n")
	fmt.Fprintf(&b, "The climate of %s varies through the year.\n", c.Name)
	for m := 0; m < 12; m++ {
		temp := c.MonthlyTemp[m]
		if corr != nil && corr.Month == Months[m] && corr.Field == "temperature" {
			temp = corr.Value
		}
		fmt.Fprintf(&b, "The average temperature in %s is %.1f degrees Fahrenheit.\n",
			Months[m], temp)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "Economy\n\nThe economy of %s is driven by %s and %s.\n",
		c.Name, fillerTopics[rng.Intn(len(fillerTopics))], fillerTopics[rng.Intn(len(fillerTopics))])
	return b.String()
}

func personArticle(rng *rand.Rand, p *Person, surface string, mention int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", surface)
	fmt.Fprintf(&b, "%s was born in %d. ", surface, p.Born)
	fmt.Fprintf(&b, "%s lives in %s. ", surface, p.City)
	switch mention % 3 {
	case 0:
		fmt.Fprintf(&b, "%s is known for work on %s.\n", surface,
			fillerTopics[rng.Intn(len(fillerTopics))])
	case 1:
		fmt.Fprintf(&b, "A profile of %s appeared in the local gazette.\n", surface)
	default:
		fmt.Fprintf(&b, "%s has contributed to several community projects.\n", surface)
	}
	return b.String()
}

func fillerArticle(rng *rand.Rand, topic string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "History of %s\n\n", topic)
	n := 4 + rng.Intn(8)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "In %d the practice of %s changed significantly. ",
			1800+rng.Intn(200), topic)
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "Records from the period are kept in regional archives. ")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Mutate returns a modified copy of the corpus simulating one day of edits:
// churnFrac of documents get a paragraph appended or a sentence changed.
// It returns the new texts keyed by title (documents are value-copied; the
// input corpus is not modified). Used by the snapshot-store experiment.
func Mutate(c *doc.Corpus, churnFrac float64, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]string, c.Len())
	for _, d := range c.Docs() {
		text := d.Text
		if rng.Float64() < churnFrac {
			switch rng.Intn(3) {
			case 0:
				text += fmt.Sprintf("\nUpdate %d: minor revision recorded.\n", seed)
			case 1:
				text = strings.Replace(text, "city", "municipality", 1)
			default:
				text += fmt.Sprintf("\nSee also: regional almanac %d.\n", rng.Intn(1000))
			}
		}
		out[d.Title] = text
	}
	return out
}
