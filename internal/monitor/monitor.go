// Package monitor implements Figure 1's statistics monitor and alert
// monitor (Part VI): components report named counters and gauges, alert
// rules watch them, and triggered alerts notify the system manager. A
// simulated clock keeps tests and experiments deterministic.
package monitor

import (
	"fmt"
	"sort"
	"sync"
)

// Stats collects named counters and gauges. Safe for concurrent use.
type Stats struct {
	mu       sync.RWMutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{counters: map[string]int64{}, gauges: map[string]float64{}}
}

// Inc adds delta to a counter.
func (s *Stats) Inc(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[name] += delta
}

// Set sets a gauge.
func (s *Stats) Set(name string, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges[name] = value
}

// Counter reads a counter (0 if absent).
func (s *Stats) Counter(name string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counters[name]
}

// Gauge reads a gauge (0, false if absent).
func (s *Stats) Gauge(name string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.gauges[name]
	return v, ok
}

// Snapshot renders all metrics sorted by name.
func (s *Stats) Snapshot() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k, v := range s.counters {
		out = append(out, fmt.Sprintf("counter %s = %d", k, v))
	}
	for k, v := range s.gauges {
		out = append(out, fmt.Sprintf("gauge %s = %g", k, v))
	}
	sort.Strings(out)
	return out
}

// Alert is one triggered alert.
type Alert struct {
	Rule    string
	Message string
	Tick    int64
}

// Rule watches the stats and fires when its condition holds.
type Rule struct {
	Name string
	// Check returns a non-empty message to fire.
	Check func(s *Stats) string
	// Cooldown suppresses re-firing for this many ticks (0 = every tick).
	Cooldown  int64
	lastFired int64
	everFired bool
}

// AlertMonitor evaluates rules on demand (each Evaluate call is one tick).
type AlertMonitor struct {
	mu     sync.Mutex
	stats  *Stats
	rules  []*Rule
	alerts []Alert
	tick   int64
}

// NewAlertMonitor wires a monitor to a stats collector.
func NewAlertMonitor(stats *Stats) *AlertMonitor {
	return &AlertMonitor{stats: stats}
}

// AddRule registers a rule.
func (m *AlertMonitor) AddRule(r Rule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rr := r
	m.rules = append(m.rules, &rr)
}

// Evaluate advances one tick, fires due rules, and returns new alerts.
func (m *AlertMonitor) Evaluate() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	var fired []Alert
	for _, r := range m.rules {
		if r.everFired && r.Cooldown > 0 && m.tick-r.lastFired <= r.Cooldown {
			continue
		}
		if msg := r.Check(m.stats); msg != "" {
			a := Alert{Rule: r.Name, Message: msg, Tick: m.tick}
			m.alerts = append(m.alerts, a)
			fired = append(fired, a)
			r.lastFired = m.tick
			r.everFired = true
		}
	}
	return fired
}

// History returns all alerts fired so far.
func (m *AlertMonitor) History() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// ThresholdRule builds a common rule: fire when a counter exceeds limit.
func ThresholdRule(name, counter string, limit int64) Rule {
	return Rule{
		Name: name,
		Check: func(s *Stats) string {
			if v := s.Counter(counter); v > limit {
				return fmt.Sprintf("%s = %d exceeds %d", counter, v, limit)
			}
			return ""
		},
	}
}

// GaugeBelowRule fires when a gauge drops below min.
func GaugeBelowRule(name, gauge string, min float64) Rule {
	return Rule{
		Name: name,
		Check: func(s *Stats) string {
			if v, ok := s.Gauge(gauge); ok && v < min {
				return fmt.Sprintf("%s = %g below %g", gauge, v, min)
			}
			return ""
		},
	}
}
