package monitor

import (
	"strings"
	"testing"
)

func TestStatsCountersGauges(t *testing.T) {
	s := NewStats()
	s.Inc("extractions", 5)
	s.Inc("extractions", 3)
	if got := s.Counter("extractions"); got != 8 {
		t.Fatalf("counter = %d", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
	s.Set("coverage", 0.75)
	if v, ok := s.Gauge("coverage"); !ok || v != 0.75 {
		t.Fatalf("gauge: %v %v", v, ok)
	}
	if _, ok := s.Gauge("missing"); ok {
		t.Fatal("missing gauge should report absent")
	}
	snap := s.Snapshot()
	if len(snap) != 2 || !strings.Contains(snap[0], "counter extractions") {
		t.Fatalf("snapshot: %v", snap)
	}
}

func TestThresholdRuleFiresOnce(t *testing.T) {
	s := NewStats()
	m := NewAlertMonitor(s)
	r := ThresholdRule("too-many-errors", "errors", 10)
	r.Cooldown = 100
	m.AddRule(r)
	if fired := m.Evaluate(); len(fired) != 0 {
		t.Fatalf("fired too early: %v", fired)
	}
	s.Inc("errors", 11)
	fired := m.Evaluate()
	if len(fired) != 1 || fired[0].Rule != "too-many-errors" {
		t.Fatalf("fired: %v", fired)
	}
	// Cooldown suppresses.
	if fired := m.Evaluate(); len(fired) != 0 {
		t.Fatalf("cooldown violated: %v", fired)
	}
	if len(m.History()) != 1 {
		t.Fatalf("history: %v", m.History())
	}
}

func TestCooldownExpires(t *testing.T) {
	s := NewStats()
	m := NewAlertMonitor(s)
	r := ThresholdRule("r", "c", 0)
	r.Cooldown = 2
	m.AddRule(r)
	s.Inc("c", 1)
	if len(m.Evaluate()) != 1 { // tick 1, fires
		t.Fatal("should fire at tick 1")
	}
	if len(m.Evaluate()) != 0 { // tick 2, cooling
		t.Fatal("tick 2 should cool")
	}
	if len(m.Evaluate()) != 0 { // tick 3, cooling
		t.Fatal("tick 3 should cool")
	}
	if len(m.Evaluate()) != 1 { // tick 4, refires
		t.Fatal("tick 4 should refire")
	}
}

func TestGaugeBelowRule(t *testing.T) {
	s := NewStats()
	m := NewAlertMonitor(s)
	m.AddRule(GaugeBelowRule("low-coverage", "coverage", 0.5))
	// Gauge absent: no fire.
	if fired := m.Evaluate(); len(fired) != 0 {
		t.Fatalf("fired on absent gauge: %v", fired)
	}
	s.Set("coverage", 0.3)
	fired := m.Evaluate()
	if len(fired) != 1 || !strings.Contains(fired[0].Message, "0.3") {
		t.Fatalf("fired: %v", fired)
	}
	s.Set("coverage", 0.9)
	if fired := m.Evaluate(); len(fired) != 0 {
		t.Fatalf("fired with healthy gauge: %v", fired)
	}
}

func TestConcurrentStats(t *testing.T) {
	s := NewStats()
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				s.Inc("n", 1)
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if s.Counter("n") != 8000 {
		t.Fatalf("lost increments: %d", s.Counter("n"))
	}
}
