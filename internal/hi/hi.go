// Package hi implements the human-intervention (HI) framework the paper
// places at the heart of its DGE model: the system isolates decisions that
// are hard for automatic techniques but easy for people (is this match
// correct? is this extracted value right?), routes them as questions, and
// folds answers back in. Answers may come from a single expert or a crowd
// (mass collaboration), aggregated by reputation-weighted voting.
//
// Humans are simulated by SimulatedAnswerer: an oracle with a configurable
// error rate, matching how the paper's claims about HI accuracy lift can
// be measured without actual people (see DESIGN.md substitutions).
package hi

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// QuestionKind classifies what is being asked.
type QuestionKind string

const (
	// QMatch asks whether two mentions/attributes refer to the same thing.
	QMatch QuestionKind = "match"
	// QValueCheck asks whether an extracted value is correct.
	QValueCheck QuestionKind = "value-check"
	// QFormChoice asks which candidate structured query matches an intent.
	QFormChoice QuestionKind = "form-choice"
)

// Question is one unit of work routed to humans.
type Question struct {
	ID      int
	Kind    QuestionKind
	Subject string // e.g. "David Smith ~ D. Smith" or "temperature=135"
	// Payload carries kind-specific data (e.g. candidate list for
	// QFormChoice).
	Payload []string
	// Priority orders the queue; higher first. The question router sets
	// this from expected information gain (e.g. match-score ambiguity).
	Priority float64
}

// Answer is one human response.
type Answer struct {
	QuestionID int
	UserID     string
	// Yes is the verdict for QMatch/QValueCheck; Choice indexes Payload
	// for QFormChoice.
	Yes    bool
	Choice int
}

// Queue is a priority queue of pending questions with a budget: the paper's
// point is that human attention is scarce, so the system must ask the most
// valuable questions first.
type Queue struct {
	mu      sync.Mutex
	nextID  int
	pending []Question
	asked   int
	budget  int // 0 = unlimited
}

// NewQueue returns a queue with the given question budget (0 = unlimited).
func NewQueue(budget int) *Queue {
	return &Queue{budget: budget}
}

// Push enqueues a question and returns its assigned ID.
func (q *Queue) Push(question Question) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextID++
	question.ID = q.nextID
	q.pending = append(q.pending, question)
	sort.SliceStable(q.pending, func(i, j int) bool {
		return q.pending[i].Priority > q.pending[j].Priority
	})
	return question.ID
}

// Pop returns the highest-priority question, or false when empty or the
// budget is exhausted.
func (q *Queue) Pop() (Question, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return Question{}, false
	}
	if q.budget > 0 && q.asked >= q.budget {
		return Question{}, false
	}
	question := q.pending[0]
	q.pending = q.pending[1:]
	q.asked++
	return question, true
}

// Len returns the number of pending questions.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Asked returns how many questions have been handed out.
func (q *Queue) Asked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.asked
}

// Answerer produces an answer to a question. Implementations: simulated
// users (below); a real deployment would bridge to a UI.
type Answerer interface {
	// ID identifies the user for reputation accounting.
	ID() string
	// Answer responds to a question given the hidden truth oracle is
	// internal to the implementation.
	Answer(q Question) Answer
}

// Oracle supplies ground truth for simulated answerers: it returns the
// correct verdict/choice for a question.
type Oracle func(q Question) (yes bool, choice int)

// SimulatedAnswerer is a configurable human: it answers correctly except
// with probability ErrorRate, using a deterministic seeded RNG.
type SimulatedAnswerer struct {
	UserID    string
	ErrorRate float64
	oracle    Oracle
	rng       *rand.Rand
	mu        sync.Mutex
	answered  int
}

// NewSimulatedAnswerer builds a simulated user around a truth oracle.
func NewSimulatedAnswerer(id string, errorRate float64, seed int64, oracle Oracle) *SimulatedAnswerer {
	return &SimulatedAnswerer{
		UserID:    id,
		ErrorRate: errorRate,
		oracle:    oracle,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// ID implements Answerer.
func (s *SimulatedAnswerer) ID() string { return s.UserID }

// Answered returns how many questions this user has answered.
func (s *SimulatedAnswerer) Answered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.answered
}

// Answer implements Answerer.
func (s *SimulatedAnswerer) Answer(q Question) Answer {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.answered++
	yes, choice := s.oracle(q)
	if s.rng.Float64() < s.ErrorRate {
		// A wrong answer: flip the verdict / pick a wrong choice.
		yes = !yes
		if len(q.Payload) > 1 {
			choice = (choice + 1 + s.rng.Intn(len(q.Payload)-1)) % len(q.Payload)
		}
	}
	return Answer{QuestionID: q.ID, UserID: s.UserID, Yes: yes, Choice: choice}
}

// ReputationSource supplies a weight for a user's vote; the users package
// implements it. A nil source weighs everyone equally.
type ReputationSource interface {
	Weight(userID string) float64
}

// Crowd aggregates several answerers with reputation-weighted voting —
// the paper's "mass collaboration" option.
type Crowd struct {
	Members []Answerer
	Rep     ReputationSource
}

// NewCrowd builds a crowd.
func NewCrowd(members []Answerer, rep ReputationSource) *Crowd {
	return &Crowd{Members: members, Rep: rep}
}

// Verdict is an aggregated crowd answer.
type Verdict struct {
	QuestionID int
	Yes        bool
	Choice     int
	// Support is the weighted fraction of the crowd agreeing with the
	// verdict, in [0,1]; downstream confidence updates use it.
	Support float64
	Answers []Answer
}

// Ask puts a question to every member and aggregates by weighted vote.
func (c *Crowd) Ask(q Question) Verdict {
	answers := make([]Answer, 0, len(c.Members))
	yesW, noW := 0.0, 0.0
	choiceW := map[int]float64{}
	total := 0.0
	for _, m := range c.Members {
		a := m.Answer(q)
		answers = append(answers, a)
		w := 1.0
		if c.Rep != nil {
			w = c.Rep.Weight(m.ID())
		}
		total += w
		if a.Yes {
			yesW += w
		} else {
			noW += w
		}
		choiceW[a.Choice] += w
	}
	v := Verdict{QuestionID: q.ID, Answers: answers}
	if total == 0 {
		return v
	}
	v.Yes = yesW >= noW
	if v.Yes {
		v.Support = yesW / total
	} else {
		v.Support = noW / total
	}
	best, bestW := 0, -1.0
	keys := make([]int, 0, len(choiceW))
	for k := range choiceW {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic tie-break
	for _, k := range keys {
		if choiceW[k] > bestW {
			best, bestW = k, choiceW[k]
		}
	}
	v.Choice = best
	return v
}

// Session drives a feedback loop: it drains a queue through a crowd and
// collects verdicts, reporting accuracy against the oracle when one is
// provided (experiment instrumentation).
type Session struct {
	Queue *Queue
	Crowd *Crowd
}

// Run processes up to max questions (0 = until empty/budget), invoking
// apply for each verdict.
func (s *Session) Run(max int, apply func(q Question, v Verdict)) int {
	n := 0
	for {
		if max > 0 && n >= max {
			return n
		}
		q, ok := s.Queue.Pop()
		if !ok {
			return n
		}
		v := s.Crowd.Ask(q)
		apply(q, v)
		n++
	}
}

// MatchSubject renders the standard subject line for a match question.
func MatchSubject(a, b string) string { return fmt.Sprintf("%s ~ %s", a, b) }
