package hi

import (
	"strings"
	"testing"

	"repro/internal/users"
)

func yesOracle(Question) (bool, int) { return true, 0 }
func noOracle(Question) (bool, int)  { return false, 0 }

func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue(0)
	q.Push(Question{Subject: "low", Priority: 0.1})
	q.Push(Question{Subject: "high", Priority: 0.9})
	q.Push(Question{Subject: "mid", Priority: 0.5})
	first, ok := q.Pop()
	if !ok || first.Subject != "high" {
		t.Fatalf("first = %+v", first)
	}
	second, _ := q.Pop()
	if second.Subject != "mid" {
		t.Fatalf("second = %+v", second)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueBudget(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 5; i++ {
		q.Push(Question{Subject: "q"})
	}
	n := 0
	for {
		if _, ok := q.Pop(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("budget allowed %d pops", n)
	}
	if q.Asked() != 2 {
		t.Fatalf("Asked = %d", q.Asked())
	}
}

func TestQueueIDsAssigned(t *testing.T) {
	q := NewQueue(0)
	id1 := q.Push(Question{})
	id2 := q.Push(Question{})
	if id1 == id2 || id1 == 0 {
		t.Fatalf("ids: %d %d", id1, id2)
	}
}

func TestSimulatedAnswererPerfect(t *testing.T) {
	a := NewSimulatedAnswerer("u1", 0, 1, yesOracle)
	for i := 0; i < 50; i++ {
		if ans := a.Answer(Question{ID: i}); !ans.Yes {
			t.Fatal("perfect answerer answered wrong")
		}
	}
	if a.Answered() != 50 {
		t.Fatalf("Answered = %d", a.Answered())
	}
}

func TestSimulatedAnswererErrorRate(t *testing.T) {
	a := NewSimulatedAnswerer("u1", 0.3, 7, yesOracle)
	wrong := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if ans := a.Answer(Question{ID: i}); !ans.Yes {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed error rate %v, configured 0.3", rate)
	}
}

func TestSimulatedAnswererDeterministic(t *testing.T) {
	a1 := NewSimulatedAnswerer("u", 0.5, 42, yesOracle)
	a2 := NewSimulatedAnswerer("u", 0.5, 42, yesOracle)
	for i := 0; i < 100; i++ {
		if a1.Answer(Question{ID: i}).Yes != a2.Answer(Question{ID: i}).Yes {
			t.Fatal("same seed must replay identically")
		}
	}
}

func TestCrowdMajorityBeatsIndividualError(t *testing.T) {
	// 9 members, each 20% wrong: majority vote should be nearly always
	// right — the mass-collaboration claim.
	members := make([]Answerer, 9)
	for i := range members {
		members[i] = NewSimulatedAnswerer(string(rune('a'+i)), 0.2, int64(i+1), yesOracle)
	}
	crowd := NewCrowd(members, nil)
	wrong := 0
	for i := 0; i < 500; i++ {
		v := crowd.Ask(Question{ID: i})
		if !v.Yes {
			wrong++
		}
		if v.Support < 0.5 {
			t.Fatalf("support %v below majority", v.Support)
		}
	}
	// Binomial(9, 0.2): P(majority wrong) ~ 2%, so ~10 expected out of
	// 500; an individual would be wrong ~100 times.
	if wrong > 30 {
		t.Fatalf("crowd wrong %d/500 times", wrong)
	}
}

func TestCrowdReputationWeighting(t *testing.T) {
	// Two unreliable users vs one reliable user: with reputation weights,
	// the reliable user dominates.
	um := users.NewManager()
	um.Register("good", "pw", users.RoleOrdinary)
	um.Register("bad1", "pw", users.RoleOrdinary)
	um.Register("bad2", "pw", users.RoleOrdinary)
	for i := 0; i < 50; i++ {
		um.RecordFeedbackOutcome("good", true)
		um.RecordFeedbackOutcome("bad1", false)
		um.RecordFeedbackOutcome("bad2", false)
	}
	good := NewSimulatedAnswerer("good", 0, 1, yesOracle)
	bad1 := NewSimulatedAnswerer("bad1", 0, 2, noOracle) // always answers "no" (wrong)
	bad2 := NewSimulatedAnswerer("bad2", 0, 3, noOracle)
	crowd := NewCrowd([]Answerer{good, bad1, bad2}, um)
	v := crowd.Ask(Question{ID: 1})
	if !v.Yes {
		t.Fatalf("reputation weighting failed: %+v", v)
	}
	// Unweighted, the two bad users would win.
	flat := NewCrowd([]Answerer{good, bad1, bad2}, nil)
	if v := flat.Ask(Question{ID: 2}); v.Yes {
		t.Fatal("control: unweighted majority should be wrong here")
	}
}

func TestCrowdChoiceAggregation(t *testing.T) {
	oracle := func(Question) (bool, int) { return true, 2 }
	members := make([]Answerer, 7)
	for i := range members {
		members[i] = NewSimulatedAnswerer(string(rune('a'+i)), 0.15, int64(i+10), oracle)
	}
	crowd := NewCrowd(members, nil)
	q := Question{ID: 1, Kind: QFormChoice, Payload: []string{"q0", "q1", "q2", "q3"}}
	right := 0
	for i := 0; i < 200; i++ {
		q.ID = i
		if v := crowd.Ask(q); v.Choice == 2 {
			right++
		}
	}
	if right < 190 {
		t.Fatalf("crowd chose correctly only %d/200", right)
	}
}

func TestCrowdEmpty(t *testing.T) {
	crowd := NewCrowd(nil, nil)
	v := crowd.Ask(Question{ID: 1})
	if v.Support != 0 || len(v.Answers) != 0 {
		t.Fatalf("empty crowd verdict: %+v", v)
	}
}

func TestSessionRun(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 10; i++ {
		q.Push(Question{Subject: "s", Priority: float64(i)})
	}
	crowd := NewCrowd([]Answerer{NewSimulatedAnswerer("u", 0, 1, yesOracle)}, nil)
	s := &Session{Queue: q, Crowd: crowd}
	seen := 0
	n := s.Run(4, func(Question, Verdict) { seen++ })
	if n != 4 || seen != 4 {
		t.Fatalf("Run processed %d/%d", n, seen)
	}
	n = s.Run(0, func(Question, Verdict) { seen++ })
	if n != 6 || seen != 10 {
		t.Fatalf("drain processed %d, total %d", n, seen)
	}
}

func TestMatchSubject(t *testing.T) {
	if s := MatchSubject("David Smith", "D. Smith"); !strings.Contains(s, "~") {
		t.Fatalf("subject: %q", s)
	}
}
