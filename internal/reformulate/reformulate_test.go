package reformulate

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func cityCatalog() Catalog {
	return Catalog{
		Table: "extracted",
		Entities: []string{
			"Madison, Wisconsin", "Milwaukee, Wisconsin", "Chicago, Illinois",
			"Springfield, Illinois", "Denver, Colorado",
		},
		Attributes: []string{"temperature", "population", "founded"},
		Qualifiers: map[string][]string{"temperature": synth.Months},
	}
}

func TestPaperQueryAverageTemperatureMadison(t *testing.T) {
	// The paper's §2 query: "find the average March-September temperature
	// in Madison, Wisconsin" as keywords.
	r := New(cityCatalog())
	cands := r.Candidates("average March September temperature Madison Wisconsin", 5)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.Agg != AggAvg || top.Attribute != "temperature" {
		t.Fatalf("top candidate: %+v", top)
	}
	if top.Entity != "Madison, Wisconsin" {
		t.Fatalf("entity: %+v", top)
	}
	if top.QualFrom != "March" || top.QualTo != "September" {
		t.Fatalf("qualifier range: %+v", top)
	}
	if !strings.Contains(top.SQL, "AVG") ||
		!strings.Contains(top.SQL, "entity = 'Madison, Wisconsin'") ||
		!strings.Contains(top.SQL, "qualifier = 'June'") {
		t.Fatalf("SQL: %s", top.SQL)
	}
	if !strings.Contains(top.Form(), "AVG of temperature for Madison, Wisconsin from March to September") {
		t.Fatalf("form: %q", top.Form())
	}
}

func TestSimpleLookupNoAggregate(t *testing.T) {
	r := New(cityCatalog())
	cands := r.Candidates("population Chicago", 3)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.Agg != AggNone || top.Attribute != "population" || top.Entity != "Chicago, Illinois" {
		t.Fatalf("top: %+v", top)
	}
	if !strings.Contains(top.SQL, "SELECT value FROM extracted") {
		t.Fatalf("SQL: %s", top.SQL)
	}
}

func TestAggregateSynonyms(t *testing.T) {
	r := New(cityCatalog())
	cases := map[string]Aggregate{
		"warmest temperature Denver": AggMax,
		"coldest temperature Denver": AggMin,
		"total population":           AggSum,
		"how many count population":  AggCount,
		"mean temperature":           AggAvg,
	}
	for q, want := range cases {
		cands := r.Candidates(q, 1)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %q", q)
		}
		if cands[0].Agg != want {
			t.Errorf("query %q: agg %v, want %v", q, cands[0].Agg, want)
		}
	}
}

func TestSingleQualifier(t *testing.T) {
	r := New(cityCatalog())
	cands := r.Candidates("temperature Madison September", 3)
	top := cands[0]
	if top.QualFrom != "September" || top.QualTo != "September" {
		t.Fatalf("single month: %+v", top)
	}
	if !strings.Contains(top.Form(), "in September") {
		t.Fatalf("form: %q", top.Form())
	}
	// SQL has exactly one qualifier disjunct.
	if strings.Count(top.SQL, "qualifier =") != 1 {
		t.Fatalf("SQL: %s", top.SQL)
	}
}

func TestFuzzyAttributeMatch(t *testing.T) {
	r := New(cityCatalog())
	// Misspelled attribute still matches.
	cands := r.Candidates("temprature Madison", 3)
	if len(cands) == 0 || cands[0].Attribute != "temperature" {
		t.Fatalf("fuzzy match failed: %+v", cands)
	}
}

func TestNoMatch(t *testing.T) {
	r := New(cityCatalog())
	if cands := r.Candidates("quarterly earnings report", 3); len(cands) != 0 {
		t.Fatalf("unexpected candidates: %+v", cands)
	}
	if cands := r.Candidates("", 3); cands != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestVariantsIncludeEntityFreeForm(t *testing.T) {
	r := New(cityCatalog())
	cands := r.Candidates("average temperature Madison Wisconsin", 6)
	foundAll := false
	for _, c := range cands {
		if c.Entity == "" && c.Agg == AggAvg {
			foundAll = true
		}
	}
	if !foundAll {
		t.Fatalf("expected an all-entities variant: %+v", cands)
	}
	// Scores must be non-increasing.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Score < cands[i].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestAccuracyAtK(t *testing.T) {
	r := New(cityCatalog())
	queries := []string{
		"average temperature Madison Wisconsin",
		"population Chicago",
		"highest temperature Denver",
	}
	correct := func(q string, c Candidate) bool {
		switch {
		case strings.Contains(q, "average"):
			return c.Agg == AggAvg && c.Attribute == "temperature" && c.Entity == "Madison, Wisconsin"
		case strings.Contains(q, "population"):
			return c.Attribute == "population" && c.Entity == "Chicago, Illinois"
		default:
			return c.Agg == AggMax && c.Entity == "Denver, Colorado"
		}
	}
	acc1 := AccuracyAtK(r, queries, correct, 1)
	acc3 := AccuracyAtK(r, queries, correct, 3)
	if acc1 < 0.99 {
		t.Fatalf("accuracy@1 = %v", acc1)
	}
	if acc3 < acc1 {
		t.Fatalf("accuracy@3 (%v) must be >= accuracy@1 (%v)", acc3, acc1)
	}
	if AccuracyAtK(r, nil, correct, 1) != 0 {
		t.Fatal("empty query set")
	}
}

// TestIncrementalEqualsRebuilt grows a reformulator delta by delta — in
// an order unlike the sorted catalog — and checks it answers every probe
// identically to one rebuilt whole from the final catalog.
func TestIncrementalEqualsRebuilt(t *testing.T) {
	full := cityCatalog()
	full.Entities = append(full.Entities, "Madison, Illinois") // ambiguous with Madison, WI
	full.Attributes = append(full.Attributes, "temperament")   // fuzzy-collides with temperature

	// Start from a one-entity seed and add the rest in reverse order.
	seed := Catalog{
		Table:      full.Table,
		Entities:   []string{full.Entities[0]},
		Attributes: []string{full.Attributes[0]},
		Qualifiers: map[string][]string{},
	}
	inc := New(seed)
	for i := len(full.Entities) - 1; i >= 1; i-- {
		inc.AddEntity(full.Entities[i])
	}
	for i := len(full.Attributes) - 1; i >= 1; i-- {
		inc.AddAttribute(full.Attributes[i])
	}
	for _, m := range full.Qualifiers["temperature"] {
		inc.AddQualifier("temperature", m)
	}
	// Idempotence: replays must not duplicate index entries.
	inc.AddEntity(full.Entities[2])
	inc.AddAttribute("temperature")
	inc.AddQualifier("temperature", "March")

	rebuilt := New(full)
	probes := []string{
		"average March September temperature Madison Wisconsin",
		"temperature Madison", // ambiguous entity: tie order must match
		"population Chicago",
		"warmest temperature Denver",
		"temperament Springfield",
		"how many count population",
	}
	for _, q := range probes {
		a := inc.Candidates(q, 6)
		b := rebuilt.Candidates(q, 6)
		if len(a) != len(b) {
			t.Fatalf("%q: %d vs %d candidates\ninc: %+v\nreb: %+v", q, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q candidate %d:\ninc: %+v\nreb: %+v", q, i, a[i], b[i])
			}
		}
	}
}

// TestAddQualifierCopiesOnWrite: vocabulary slices handed out in earlier
// catalog snapshots must not be mutated by later deltas.
func TestAddQualifierCopiesOnWrite(t *testing.T) {
	r := New(Catalog{Table: "t", Qualifiers: map[string][]string{}})
	r.AddAttribute("temperature")
	r.AddQualifier("temperature", "March")
	before := r.cat.Qualifiers["temperature"]
	r.AddQualifier("temperature", "April")
	if len(before) != 1 || before[0] != "March" {
		t.Fatalf("earlier vocabulary mutated: %v", before)
	}
	if got := r.cat.Qualifiers["temperature"]; len(got) != 2 || got[1] != "April" {
		t.Fatalf("vocabulary after delta: %v", got)
	}
}

func TestSQLEscaping(t *testing.T) {
	cat := cityCatalog()
	cat.Entities = append(cat.Entities, "O'Fallon, Missouri")
	r := New(cat)
	cands := r.Candidates("population O'Fallon", 3)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(cands[0].SQL, "O''Fallon") {
		t.Fatalf("quote not escaped: %s", cands[0].SQL)
	}
}
