// Package reformulate implements the user-layer transition the paper calls
// out as the coming bottleneck: ordinary users start with a keyword query
// ("average temperature Madison"), and the system guesses candidate
// structured queries over the extracted schema, shows them as forms, and
// lets the user *recognize* the right one instead of writing SQL — the
// recognition-vs-generation principle of Section 3.3.
package reformulate

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/doc"
	"repro/internal/integrate"
)

// Aggregate enumerates supported aggregates.
type Aggregate string

const (
	AggAvg   Aggregate = "AVG"
	AggSum   Aggregate = "SUM"
	AggMin   Aggregate = "MIN"
	AggMax   Aggregate = "MAX"
	AggCount Aggregate = "COUNT"
	AggNone  Aggregate = "" // plain lookup
)

var aggWords = map[string]Aggregate{
	"average": AggAvg, "avg": AggAvg, "mean": AggAvg,
	"total": AggSum, "sum": AggSum,
	"minimum": AggMin, "min": AggMin, "lowest": AggMin, "coldest": AggMin,
	"maximum": AggMax, "max": AggMax, "highest": AggMax, "warmest": AggMax, "hottest": AggMax,
	"count": AggCount, "many": AggCount,
}

// Candidate is one guessed structured query, renderable as a form.
type Candidate struct {
	Agg       Aggregate
	Attribute string
	Entity    string // resolved entity, empty = all entities
	QualFrom  string // inclusive qualifier range (e.g. months)
	QualTo    string
	Score     float64
	// SQL is the executable translation over the EAV table layout
	// (entity, attribute, qualifier, value, conf).
	SQL string
}

// Form renders the candidate the way a form interface would show it.
func (c Candidate) Form() string {
	var b strings.Builder
	if c.Agg != AggNone {
		fmt.Fprintf(&b, "%s of ", c.Agg)
	}
	b.WriteString(c.Attribute)
	if c.Entity != "" {
		fmt.Fprintf(&b, " for %s", c.Entity)
	}
	if c.QualFrom != "" && c.QualTo != "" && c.QualFrom != c.QualTo {
		fmt.Fprintf(&b, " from %s to %s", c.QualFrom, c.QualTo)
	} else if c.QualFrom != "" {
		fmt.Fprintf(&b, " in %s", c.QualFrom)
	}
	return b.String()
}

// Catalog describes the extracted structure the reformulator targets: the
// EAV table name plus the distinct entities, attributes, and qualifier
// vocabulary (with ordering for range qualifiers like months).
type Catalog struct {
	Table      string
	Entities   []string
	Attributes []string
	// Qualifiers maps an attribute to its ordered qualifier vocabulary
	// (e.g. temperature -> the twelve months in order). Order enables
	// range queries ("March to September").
	Qualifiers map[string][]string
}

// Reformulator guesses structured queries from keywords. It can be built
// whole from a catalog (New) or maintained incrementally on catalog deltas
// (AddEntity/AddAttribute/AddQualifier): candidate ranking breaks every
// tie by name, never by catalog position, so an incrementally grown
// reformulator answers identically to one rebuilt from the same catalog
// regardless of insertion order. Queries and deltas may run concurrently;
// an internal RWMutex keeps them safe.
type Reformulator struct {
	mu  sync.RWMutex
	cat Catalog
	// entity index: normalized token -> indexes into cat.Entities
	entityTokens map[string][]int
	entitySeen   map[string]bool
	attrSeen     map[string]bool
}

// New builds a reformulator over a catalog. The qualifier map is copied
// (vocabulary slices stay shared; AddQualifier copies them on write), so
// later deltas never mutate the caller's catalog — which may be a
// memoized snapshot other readers hold as read-only.
func New(cat Catalog) *Reformulator {
	quals := make(map[string][]string, len(cat.Qualifiers))
	for a, v := range cat.Qualifiers {
		quals[a] = v
	}
	cat.Qualifiers = quals
	r := &Reformulator{
		cat:          cat,
		entityTokens: map[string][]int{},
		entitySeen:   map[string]bool{},
		attrSeen:     map[string]bool{},
	}
	for i, e := range cat.Entities {
		r.entitySeen[e] = true
		r.indexEntityTokens(e, i)
	}
	for _, a := range cat.Attributes {
		r.attrSeen[a] = true
	}
	return r
}

func (r *Reformulator) indexEntityTokens(entity string, idx int) {
	for _, tk := range doc.Tokenize(entity) {
		t := doc.NormalizeTerm(tk.Text)
		if t != "" {
			r.entityTokens[t] = append(r.entityTokens[t], idx)
		}
	}
}

// AddEntity folds one new entity into the token index — tokenizing only
// that entity, not rebuilding the whole index. Idempotent.
func (r *Reformulator) AddEntity(entity string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entitySeen[entity] {
		return
	}
	r.entitySeen[entity] = true
	r.cat.Entities = append(r.cat.Entities, entity)
	r.indexEntityTokens(entity, len(r.cat.Entities)-1)
}

// AddAttribute registers one new attribute. Idempotent.
func (r *Reformulator) AddAttribute(attr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.attrSeen[attr] {
		return
	}
	r.attrSeen[attr] = true
	r.cat.Attributes = append(r.cat.Attributes, attr)
}

// AddQualifier appends one qualifier to an attribute's vocabulary in
// arrival order (the order that defines qualifier ranges). Idempotent.
// The vocabulary slice is copied on write so previously shared catalog
// snapshots are never mutated.
func (r *Reformulator) AddQualifier(attr, qual string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vocab := r.cat.Qualifiers[attr]
	for _, q := range vocab {
		if q == qual {
			return
		}
	}
	if r.cat.Qualifiers == nil {
		r.cat.Qualifiers = map[string][]string{}
	}
	fresh := make([]string, 0, len(vocab)+1)
	fresh = append(fresh, vocab...)
	r.cat.Qualifiers[attr] = append(fresh, qual)
}

// Candidates returns the top-k guessed structured queries for a keyword
// query, best first.
func (r *Reformulator) Candidates(query string, k int) []Candidate {
	r.mu.RLock()
	defer r.mu.RUnlock()
	terms := []string{}
	for _, tk := range doc.Tokenize(query) {
		t := doc.NormalizeTerm(tk.Text)
		if t != "" {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		return nil
	}

	agg, aggScore := detectAggregate(terms)
	entities := r.detectEntities(terms, 3)
	attrs := r.scoreAttributes(terms)
	if len(attrs) == 0 {
		return nil
	}

	var out []Candidate
	for _, as := range attrs {
		quals := r.detectQualifierRange(as.attr, terms)
		// One candidate per plausible entity (ambiguous city names yield
		// several forms the user can recognize among), plus variants.
		entityChoices := entities
		if len(entityChoices) == 0 {
			entityChoices = []scoredEntity{{name: "", score: 0}}
		}
		for rank, ent := range entityChoices {
			base := 0.5*as.score + 0.25*ent.score + 0.15*aggScore
			// Later-ranked entities decay so the best guess leads.
			base *= 1 - 0.15*float64(rank)
			c := Candidate{
				Agg: agg, Attribute: as.attr, Entity: ent.name,
				QualFrom: quals.from, QualTo: quals.to,
				Score: base + 0.1*quals.score,
			}
			c.SQL = r.toSQL(c)
			out = append(out, c)
			// Variant without the aggregate (plain lookup) when an
			// aggregate was guessed.
			if agg != AggNone && rank == 0 {
				v := Candidate{
					Attribute: as.attr, Entity: ent.name,
					QualFrom: quals.from, QualTo: quals.to,
					Score: base*0.8 + 0.1*quals.score,
				}
				v.SQL = r.toSQL(v)
				out = append(out, v)
			}
		}
		// Variant across all entities when an entity was guessed.
		if len(entities) > 0 {
			base := 0.5*as.score + 0.15*aggScore
			v := Candidate{
				Agg: agg, Attribute: as.attr,
				QualFrom: quals.from, QualTo: quals.to,
				Score: base * 0.6,
			}
			v.SQL = r.toSQL(v)
			out = append(out, v)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func detectAggregate(terms []string) (Aggregate, float64) {
	for _, t := range terms {
		if a, ok := aggWords[t]; ok {
			return a, 1
		}
	}
	return AggNone, 0
}

type scoredEntity struct {
	name  string
	score float64
}

// detectEntities ranks the entities whose name tokens best cover query
// terms, returning up to k. Ambiguous references (a city name without its
// state) produce several candidates with equal votes; the form interface
// shows them all for the user to recognize among.
func (r *Reformulator) detectEntities(terms []string, k int) []scoredEntity {
	votes := map[int]int{}
	for _, t := range terms {
		for _, ei := range r.entityTokens[t] {
			votes[ei]++
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type cand struct {
		idx   int
		votes int
	}
	cands := make([]cand, 0, len(votes))
	for ei, v := range votes {
		cands = append(cands, cand{ei, v})
	}
	// Ties break by entity name, not catalog position, so incremental and
	// rebuilt token indexes rank identically.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return r.cat.Entities[cands[i].idx] < r.cat.Entities[cands[j].idx]
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	out := make([]scoredEntity, 0, len(cands))
	for _, c := range cands {
		name := r.cat.Entities[c.idx]
		nameTokens := len(doc.Tokenize(name))
		score := float64(c.votes) / float64(maxInt(nameTokens, 1))
		if score > 1 {
			score = 1
		}
		// Entities matching fewer than the leader's votes are weaker.
		out = append(out, scoredEntity{name: name, score: score})
	}
	return out
}

type attrScore struct {
	attr  string
	score float64
}

func (r *Reformulator) scoreAttributes(terms []string) []attrScore {
	var out []attrScore
	for _, attr := range r.cat.Attributes {
		best := 0.0
		for _, t := range terms {
			if aggWords[t] != "" && t != attr {
				continue
			}
			s := integrate.JaroWinkler(strings.ToLower(attr), t)
			if s > best {
				best = s
			}
		}
		if best >= 0.75 {
			out = append(out, attrScore{attr: attr, score: best})
		}
	}
	// Equal scores order by attribute name, independent of catalog order.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].attr < out[j].attr
	})
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

type qualRange struct {
	from, to string
	score    float64
}

// detectQualifierRange finds one or two qualifier vocabulary terms in the
// query; two define a range in vocabulary order.
func (r *Reformulator) detectQualifierRange(attr string, terms []string) qualRange {
	vocab := r.cat.Qualifiers[attr]
	if len(vocab) == 0 {
		return qualRange{}
	}
	var found []int
	for _, t := range terms {
		for i, q := range vocab {
			if strings.EqualFold(q, t) {
				found = append(found, i)
			}
		}
	}
	if len(found) == 0 {
		return qualRange{}
	}
	sort.Ints(found)
	lo, hi := found[0], found[len(found)-1]
	return qualRange{from: vocab[lo], to: vocab[hi], score: 1}
}

// toSQL translates a candidate into SQL over the EAV layout. Qualifier
// ranges expand to OR chains in vocabulary order (months are not
// lexicographically ordered, so BETWEEN on the string doesn't work).
func (r *Reformulator) toSQL(c Candidate) string {
	sel := "value"
	switch c.Agg {
	case AggAvg:
		sel = "AVG(num)"
	case AggSum:
		sel = "SUM(num)"
	case AggMin:
		sel = "MIN(num)"
	case AggMax:
		sel = "MAX(num)"
	case AggCount:
		sel = "COUNT(*)"
	}
	var where []string
	where = append(where, fmt.Sprintf("attribute = '%s'", escapeSQL(c.Attribute)))
	if c.Entity != "" {
		where = append(where, fmt.Sprintf("entity = '%s'", escapeSQL(c.Entity)))
	}
	if c.QualFrom != "" {
		vocab := r.cat.Qualifiers[c.Attribute]
		lo := indexOf(vocab, c.QualFrom)
		hi := indexOf(vocab, c.QualTo)
		if lo >= 0 && hi >= lo {
			var ors []string
			for i := lo; i <= hi; i++ {
				ors = append(ors, fmt.Sprintf("qualifier = '%s'", escapeSQL(vocab[i])))
			}
			where = append(where, "("+strings.Join(ors, " OR ")+")")
		}
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s", sel, r.cat.Table, strings.Join(where, " AND "))
}

func escapeSQL(s string) string { return strings.ReplaceAll(s, "'", "''") }

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AccuracyAtK scores the reformulator on labelled examples: each example
// pairs a keyword query with a predicate identifying the correct
// candidate; the metric is the fraction where a correct candidate appears
// in the top k (the E5 experiment's measure of "recognition" cost).
func AccuracyAtK(r *Reformulator, queries []string, correct func(q string, c Candidate) bool, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	hit := 0
	for _, q := range queries {
		for _, c := range r.Candidates(q, k) {
			if correct(q, c) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(queries))
}
