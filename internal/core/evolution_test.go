package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/uql"
)

func TestSchemaEvolvesAsAttributesArrive(t *testing.T) {
	s, _ := newSystem(t, 8, 0, 0)
	if len(s.Schema.Current().Attributes) != 0 {
		t.Fatal("schema should start empty")
	}
	// Phase 1: only temperatures.
	s.PlanIncremental(context.Background(), "city", []string{"temperature"}, 2)
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	v := s.Schema.Current()
	if len(v.Attributes) != 1 || v.Attributes[0].Name != "temperature" {
		t.Fatalf("after phase 1: %+v", v.Attributes)
	}
	if v.Attributes[0].Type != schema.TypeFloat {
		t.Fatalf("temperature should infer float, got %v", v.Attributes[0].Type)
	}
	// Phase 2: populations arrive later; the schema evolves.
	s.PlanIncremental(context.Background(), "city", []string{"population"}, 2)
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	v = s.Schema.Current()
	if len(v.Attributes) != 2 {
		t.Fatalf("after phase 2: %+v", v.Attributes)
	}
	// History records the growth.
	if len(s.Schema.History()) < 3 {
		t.Fatalf("history: %v", s.Schema.History())
	}
	if s.Stats.Counter("core.schema.attributes") != 2 {
		t.Fatalf("schema counter: %d", s.Stats.Counter("core.schema.attributes"))
	}
}

func TestSchemaEvolvesViaGenerate(t *testing.T) {
	s, _ := newSystem(t, 6, 0, 0)
	if _, err := s.Generate(context.Background(), `
		EXTRACT temperature, founded FROM docs USING city KIND city INTO facts;
		STORE facts INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	attrs := s.Schema.Current().Attributes
	names := map[string]schema.FieldType{}
	for _, a := range attrs {
		names[a.Name] = a.Type
	}
	if names["temperature"] != schema.TypeFloat {
		t.Fatalf("temperature type: %v", names)
	}
	if names["founded"] != schema.TypeInt {
		t.Fatalf("founded type: %v", names)
	}
}

func TestExplainFact(t *testing.T) {
	s, _ := newSystem(t, 5, 0, 0)
	if _, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	text, err := s.ExplainFact(context.Background(), "Madison, Wisconsin", "temperature", "September")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"temperature[September]=62.0", "temperature-rule", "Madison, Wisconsin"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explanation missing %q:\n%s", want, text)
		}
	}
	if _, err := s.ExplainFact(context.Background(), "Nowhere", "temperature", "July"); err == nil {
		t.Fatal("missing fact should error")
	}
}
