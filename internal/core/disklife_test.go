package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/synth"
	"repro/internal/uql"
)

// Tests for the single-root disk lifecycle (OpenDir/Close) and the
// warm-state content checksum.

func TestOpenDirFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 11, Cities: 12, People: 4, Filler: 10, MentionsPerPerson: 2,
	})
	setup := func(s *System) error {
		if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
			return err
		}
		if err := s.PlanIncremental(context.Background(), "city", []string{"population"}, 4); err != nil {
			return err
		}
		_, err := s.ExtractPending(context.Background(), "city", 2)
		return err
	}

	// First life: fresh directory, setup generates the structure.
	a, repA, err := OpenDir(dir, Config{Corpus: corpus}, setup)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Reopened {
		t.Fatal("fresh directory reported as reopened")
	}
	catA, err := a.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rowsA, err := a.extractedRowCount()
	if err != nil {
		t.Fatal(err)
	}
	if rowsA == 0 {
		t.Fatal("setup produced no rows")
	}
	pendingA := a.PendingTasks()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the database reopens from disk — setup must NOT run
	// (a sentinel would double the rows) — and warm state restores the
	// catalog and queue over the recovered table.
	b, repB, err := OpenDir(dir, Config{Corpus: corpus}, func(s *System) error {
		t.Fatal("setup ran on reopen")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !repB.Reopened {
		t.Fatal("existing database not detected")
	}
	if !repB.Warm {
		t.Fatal("warm snapshot refused on reopen of identical state")
	}
	rowsB, err := b.extractedRowCount()
	if err != nil {
		t.Fatal(err)
	}
	if rowsB != rowsA {
		t.Fatalf("rows after reopen: %d, want %d", rowsB, rowsA)
	}
	if b.PendingTasks() != pendingA {
		t.Fatalf("pending tasks after reopen: %d, want %d", b.PendingTasks(), pendingA)
	}
	catB, err := b.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(catA, catB) {
		t.Fatalf("catalog after reopen differs:\ngot  %+v\nwant %+v", catB, catA)
	}
	// The recovered structure answers queries.
	rs, err := b.SQL(context.Background(), "SELECT COUNT(*) AS n FROM extracted WHERE attribute = 'temperature'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I == 0 {
		t.Fatalf("reopened database gave no temperature rows: %v", rs.Rows)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: still there after a second full cycle.
	c, repC, err := OpenDir(dir, Config{Corpus: corpus}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !repC.Reopened {
		t.Fatal("third open did not reopen")
	}
	rowsC, _ := c.extractedRowCount()
	if rowsC != rowsA {
		t.Fatalf("rows in third life: %d, want %d", rowsC, rowsA)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmLoadVerifiesInO1OnReopen: a fresh process reopening a disk
// root must validate the warm snapshot against the engine-maintained
// content hash — O(1) — instead of rebuilding the catalog with a table
// scan. The o1verify counter proves the fast path ran, and the engine
// digest must equal what a cache rebuild would compute (the hashes are
// defined over the same columns by the same function).
func TestWarmLoadVerifiesInO1OnReopen(t *testing.T) {
	dir := t.TempDir()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 11, Cities: 12, People: 4, Filler: 10, MentionsPerPerson: 2,
	})
	setup := func(s *System) error {
		_, err := s.Generate(context.Background(), warmGenProgram, uql.Options{})
		return err
	}
	a, _, err := OpenDir(dir, Config{Corpus: corpus}, setup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Catalog(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, rep, err := OpenDir(dir, Config{Corpus: corpus}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reopened || !rep.Warm {
		t.Fatalf("expected warm reopen, got %+v", rep)
	}
	if b.Stats.Counter("core.warmstate.o1verify") == 0 {
		t.Fatal("warm load did not take the O(1) content-hash verification path")
	}
	// Cross-check: the engine's persisted digest equals a from-scratch
	// cache rebuild's digest.
	engineHash, ok := b.DB.ContentHash(TableName)
	if !ok {
		t.Fatal("content hash not enabled on the extracted table")
	}
	var fresh catalogCache
	if err := fresh.rebuildFrom(b.DB, TableName); err != nil {
		t.Fatal(err)
	}
	if fresh.hash != engineHash {
		t.Fatalf("engine digest %x != cache rebuild digest %x", engineHash, fresh.hash)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStateChecksumCatchesSameCountDivergence builds two tables with
// the same row count but different content: row-count and epoch checks
// pass, and only the content checksum can refuse the snapshot.
func TestWarmStateChecksumCatchesSameCountDivergence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "warm")
	corpus, _ := synth.Generate(synth.Config{
		Seed: 11, Cities: 12, People: 4, Filler: 10, MentionsPerPerson: 2,
	})

	rowsOf := func(qual string, n int) []uql.Row {
		out := make([]uql.Row, n)
		for i := range out {
			out[i] = uql.Row{
				Entity:    "City-" + string(rune('A'+i%7)),
				Attribute: "temperature",
				Qualifier: qual,
				Value:     "42",
				Conf:      0.9,
			}
		}
		return out
	}

	// Process A materializes n rows with qualifier "jan" and saves.
	a, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.materialize(rowsOf("jan", 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Catalog(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}

	// Process B materializes the SAME NUMBER of rows with a different
	// qualifier: same row count, same epoch trajectory, different content.
	b, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.materialize(rowsOf("jul", 20)); err != nil {
		t.Fatal(err)
	}
	warm, err := b.LoadWarmState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("snapshot with matching row count but divergent content was accepted")
	}
	if b.Stats.Counter("core.warmstate.stale") == 0 {
		t.Fatal("stale counter not bumped")
	}

	// A process with truly identical content still loads warm.
	c, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.materialize(rowsOf("jan", 20)); err != nil {
		t.Fatal(err)
	}
	warm, err = c.LoadWarmState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("identical content refused")
	}
}
