package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alert"
	"repro/internal/hi"
	"repro/internal/synth"
	"repro/internal/uql"
)

func newSystem(t *testing.T, cities, people int, corrupt float64) (*System, *synth.Truth) {
	t.Helper()
	corpus, truth := synth.Generate(synth.Config{
		Seed: 11, Cities: cities, People: people, Filler: 10,
		MentionsPerPerson: 2, CorruptFrac: corrupt,
	})
	s, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	return s, truth
}

func TestGenerateAndGuidedAnswerPaperFlow(t *testing.T) {
	s, truth := newSystem(t, 12, 4, 0)
	// Generation: the developer's declarative program.
	plan, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain, "extract") {
		t.Fatalf("plan: %s", plan.Explain)
	}
	// Exploitation: an ordinary user's keyword query, guided to structure.
	ans, err := s.AskGuided(context.Background(), "average March September temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	got, ok := AverageFromRows(ans.Answer)
	if !ok {
		t.Fatalf("no numeric answer: %+v", ans.Answer)
	}
	madison := truth.CityTruth("Madison, Wisconsin")
	want := madison.AvgTemp(2, 8) // March..September
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("guided answer = %v, truth = %v", got, want)
	}
}

func TestKeywordSearchBaselineCannotAggregate(t *testing.T) {
	s, _ := newSystem(t, 8, 2, 0)
	hits, err := s.KeywordSearch(context.Background(), "average temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("keyword hits: %+v", hits)
	}
	// The baseline returns documents — the snippet contains *a* monthly
	// temperature sentence, never the March-September average itself.
	if strings.Contains(hits[0].Snippet, "average of") {
		t.Fatal("IR baseline should not compute")
	}
}

func TestIncrementalBestEffort(t *testing.T) {
	s, truth := newSystem(t, 10, 2, 0)
	if err := s.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 5); err != nil {
		t.Fatal(err)
	}
	if s.PendingTasks() != 10 {
		t.Fatalf("pending = %d", s.PendingTasks())
	}
	if cov := s.Coverage("temperature"); cov != 0 {
		t.Fatalf("initial coverage = %v", cov)
	}
	// The user demands temperatures: those tasks run first.
	s.Demand(context.Background(), "temperature", 10)
	n, err := s.ExtractPending(context.Background(), "city", 5)
	if err != nil || n != 5 {
		t.Fatalf("ExtractPending: %d %v", n, err)
	}
	if cov := s.Coverage("temperature"); cov != 1 {
		t.Fatalf("temperature coverage = %v, want 1 (demanded first)", cov)
	}
	if cov := s.Coverage("population"); cov != 0 {
		t.Fatalf("population coverage = %v, want 0", cov)
	}
	// Queries already work on the partial structure.
	rs, err := s.SQL(context.Background(), "SELECT COUNT(*) FROM extracted WHERE attribute = 'temperature'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != int64(12*len(truth.Cities)) {
		t.Fatalf("temperature rows: %v", rs.Rows)
	}
	// Finish the rest.
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	if s.PendingTasks() != 0 {
		t.Fatal("tasks remain")
	}
	if cov := s.Coverage("population"); cov != 1 {
		t.Fatalf("final population coverage = %v", cov)
	}
}

func TestAlertsFireOnMaterialization(t *testing.T) {
	s, truth := newSystem(t, 10, 0, 0)
	big := 0
	for _, c := range truth.Cities {
		if c.Population > 500000 {
			big++
		}
	}
	if _, err := s.Subscribe(alert.Subscription{
		User: "alice", Attribute: "population", Op: alert.OpGT, Threshold: 500000,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.PlanIncremental(context.Background(), "city", []string{"population"}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	fired := s.Stats.Counter("core.alerts.fired")
	if fired == 0 && big > 0 {
		t.Fatalf("no alerts fired; %d cities qualify", big)
	}
}

func TestSweepSuspiciousFindsCorruption(t *testing.T) {
	s, truth := newSystem(t, 40, 0, 0.15)
	if len(truth.Corruptions) == 0 {
		t.Skip("no corruption generated")
	}
	if err := s.PlanIncremental(context.Background(), "city", []string{"temperature"}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	violations, err := s.SweepSuspicious(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every injected corruption should be flagged.
	flagged := map[string]bool{}
	for _, v := range violations {
		flagged[v.Entity] = true
	}
	missed := 0
	for _, c := range truth.Corruptions {
		if !flagged[c.DocTitle] {
			missed++
		}
	}
	if missed > 0 {
		t.Fatalf("debugger missed %d/%d corruptions", missed, len(truth.Corruptions))
	}
}

func TestCorrectValueAndIncentives(t *testing.T) {
	s, _ := newSystem(t, 5, 0, 0)
	s.Users.Register("alice", "pw", "ordinary")
	for i := 0; i < 8; i++ {
		s.Users.RecordFeedbackOutcome("alice", true)
	}
	s.PlanIncremental(context.Background(), "city", []string{"temperature"}, 1)
	s.ExtractPending(context.Background(), "city", 0)
	if err := s.CorrectValue(context.Background(), "alice", "Madison, Wisconsin", "temperature", "July", "74.0"); err != nil {
		t.Fatal(err)
	}
	rs, err := s.SQL(context.Background(), "SELECT value, conf FROM extracted WHERE entity = 'Madison, Wisconsin' AND qualifier = 'July'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "74.0" {
		t.Fatalf("correction lost: %v", rs.Rows)
	}
	if rs.Rows[0][1].F != 0.9 { // alice's reputation weight
		t.Fatalf("conf should be corrector's weight: %v", rs.Rows[0][1])
	}
	if s.Users.Points("alice") != 5 {
		t.Fatalf("points: %d", s.Users.Points("alice"))
	}
	if err := s.CorrectValue(context.Background(), "alice", "Nowhere", "temperature", "July", "1"); err == nil {
		t.Fatal("correction of missing row should fail")
	}
}

func TestBrowseFacets(t *testing.T) {
	s, _ := newSystem(t, 6, 0, 0)
	s.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 1)
	s.ExtractPending(context.Background(), "city", 0)
	b, err := s.Browse(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	facets := b.Facets()
	var attrFacet []string
	for _, f := range facets {
		if f.Name == "attribute" {
			for _, v := range f.Values {
				attrFacet = append(attrFacet, v.Value)
			}
		}
	}
	if len(attrFacet) != 2 {
		t.Fatalf("attribute facet: %v", attrFacet)
	}
	if err := b.Refine("attribute", "temperature"); err != nil {
		t.Fatal(err)
	}
	if len(b.Rows()) != 6*12 {
		t.Fatalf("refined rows: %d", len(b.Rows()))
	}
}

func TestCatalogQualifierOrder(t *testing.T) {
	s, _ := newSystem(t, 4, 0, 0)
	s.PlanIncremental(context.Background(), "city", []string{"temperature"}, 1)
	s.ExtractPending(context.Background(), "city", 0)
	cat, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	quals := cat.Qualifiers["temperature"]
	if len(quals) != 12 || quals[0] != "January" || quals[8] != "September" {
		t.Fatalf("qualifier order: %v", quals)
	}
	if len(cat.Entities) != 4 {
		t.Fatalf("entities: %v", cat.Entities)
	}
}

func TestGenerateWithHIFeedback(t *testing.T) {
	corpus, _ := synth.Generate(synth.Config{Seed: 3, Cities: 5, People: 3, Filler: 0, MentionsPerPerson: 2})
	oracle := func(q hi.Question) (bool, int) { return true, 0 }
	crowd := hi.NewCrowd([]hi.Answerer{
		hi.NewSimulatedAnswerer("u1", 0.1, 1, oracle),
		hi.NewSimulatedAnswerer("u2", 0.1, 2, oracle),
		hi.NewSimulatedAnswerer("u3", 0.1, 3, oracle),
	}, nil)
	s, err := New(Config{Corpus: corpus, Crowd: crowd})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Generate(context.Background(), `
		EXTRACT person FROM docs USING person KIND person INTO people;
		ASK people MINCONF 0.7 BUDGET 10;
		STORE people INTO TABLE extracted;
	`, uql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Counter("uql.ask.questions") == 0 {
		t.Fatal("no questions asked")
	}
	// Confirmed facts should have risen above their raw extractor conf.
	rs, err := s.SQL(context.Background(), "SELECT MAX(conf) FROM extracted WHERE attribute = 'person'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].F <= 0.6 {
		t.Fatalf("feedback did not raise confidence: %v", rs.Rows)
	}
}

func TestSystemRequiresCorpus(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil corpus should fail")
	}
}
