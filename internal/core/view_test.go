package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdbms"
	"repro/internal/uql"
)

func generateTestStructure(t *testing.T, s *System) {
	t.Helper()
	if _, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		t.Fatal(err)
	}
}

// viewCountAndHash reads the extracted table through the View's SQL path
// twice over: once as a COUNT and once as an order-independent content
// hash of a full SELECT, so two invocations on one View prove repeatable
// reads at its LSN.
func viewCountAndHash(t *testing.T, v *View) (int64, uint64) {
	t.Helper()
	rs, err := v.SQL("SELECT COUNT(*) FROM extracted")
	if err != nil {
		t.Fatal(err)
	}
	count := rs.Rows[0][0].I
	all, err := v.SQL("SELECT entity, attribute, qualifier, value FROM extracted")
	if err != nil {
		t.Fatal(err)
	}
	var hash uint64
	for _, row := range all.Rows {
		h := fnv.New64a()
		for _, val := range row {
			fmt.Fprintf(h, "%s|", val.S)
		}
		hash += h.Sum64()
	}
	return count, hash
}

// TestViewRepeatableRead: a View pins the structure at its LSN — writes
// committed after it opened are invisible to every exploitation mode on
// the View, while a fresh View (and one-shot System reads) see them.
func TestViewRepeatableRead(t *testing.T) {
	s, _ := newSystem(t, 12, 4, 0)
	defer s.Close()
	generateTestStructure(t, s)
	ctx := context.Background()

	v, err := s.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	count0, hash0 := viewCountAndHash(t, v)
	if count0 == 0 {
		t.Fatal("no extracted rows")
	}
	lsn0 := v.LSN()

	// Commit a write behind the View's back through the writer path.
	if _, err := s.SQL(ctx, "INSERT INTO extracted VALUES ('Viewville', 'temperature', 'July', '99', 99.0, 1.0)"); err != nil {
		t.Fatal(err)
	}

	count1, hash1 := viewCountAndHash(t, v)
	if count1 != count0 || hash1 != hash0 {
		t.Fatalf("view drifted: count %d->%d hash %x->%x", count0, count1, hash0, hash1)
	}
	if v.LSN() != lsn0 {
		t.Fatalf("view LSN moved: %d -> %d", lsn0, v.LSN())
	}
	b, err := v.Browse()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Rows()); int64(got) != count0 {
		t.Fatalf("view browse sees %d rows, want %d", got, count0)
	}

	// A fresh View observes the write, at a later LSN.
	v2, err := s.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	count2, _ := viewCountAndHash(t, v2)
	if count2 != count0+1 {
		t.Fatalf("fresh view count = %d, want %d", count2, count0+1)
	}
	if v2.LSN() <= lsn0 {
		t.Fatalf("fresh view LSN %d not after %d", v2.LSN(), lsn0)
	}
}

// TestViewGuidedAndKeywordAtSnapshot: AskGuided executes its structured
// candidate at the View's LSN (a correction committed after the View
// opened must not leak in), and KeywordSearch still answers on the View.
func TestViewGuidedAndKeywordAtSnapshot(t *testing.T) {
	s, _ := newSystem(t, 12, 4, 0)
	defer s.Close()
	generateTestStructure(t, s)
	ctx := context.Background()

	v, err := s.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	before, err := v.AskGuided("average March September temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Candidates) == 0 || before.Answer == nil {
		t.Fatalf("guided on view: %+v", before)
	}
	want, ok := AverageFromRows(before.Answer)
	if !ok {
		t.Fatal("no numeric answer")
	}

	// Skew every Madison temperature through the writer path.
	if _, err := s.SQL(ctx, "UPDATE extracted SET value = '1000', num = 1000.0 WHERE entity = 'Madison, Wisconsin'"); err != nil {
		t.Fatal(err)
	}

	after, err := v.AskGuided("average March September temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := AverageFromRows(after.Answer)
	if !ok {
		t.Fatal("no numeric answer after write")
	}
	if got != want {
		t.Fatalf("view's guided answer drifted: %v -> %v", want, got)
	}
	hits, err := v.KeywordSearch("temperature Madison Wisconsin", 3)
	if err != nil || len(hits) == 0 {
		t.Fatalf("keyword on view: %v %v", hits, err)
	}

	// The one-shot path sees the committed skew.
	live, err := s.AskGuided(ctx, "average March September temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	if liveAvg, _ := AverageFromRows(live.Answer); liveAvg != 1000 {
		t.Fatalf("one-shot guided = %v, want 1000", liveAvg)
	}
}

// TestViewRejectsWritesAndUseAfterClose: View.SQL is SELECT-only, and a
// closed View refuses further work instead of touching a released
// snapshot.
func TestViewRejectsWritesAndUseAfterClose(t *testing.T) {
	s, _ := newSystem(t, 8, 2, 0)
	defer s.Close()
	generateTestStructure(t, s)

	v, err := s.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.SQL("DELETE FROM extracted WHERE entity = 'x'"); err == nil {
		t.Fatal("view accepted a mutation")
	}
	inflight := s.InFlightOps()
	if inflight == 0 {
		t.Fatal("open view not counted in-flight")
	}
	v.Close()
	v.Close() // idempotent
	if got := s.InFlightOps(); got != inflight-1 {
		t.Fatalf("in-flight after close = %d, want %d", got, inflight-1)
	}
	if _, err := v.SQL("SELECT COUNT(*) FROM extracted"); err == nil {
		t.Fatal("closed view served a query")
	}
}

// TestViewZeroLockAcquisitions: a View's entire exploitation surface —
// SQL, guided, browse, keyword — runs without a single lock-manager
// acquisition. The catalog is warmed first so the measured window holds
// pure read traffic.
func TestViewZeroLockAcquisitions(t *testing.T) {
	s, _ := newSystem(t, 12, 4, 0)
	defer s.Close()
	generateTestStructure(t, s)
	ctx := context.Background()
	// Warm the published catalog (the first build scans via a snapshot —
	// also lock-free — but keep the measured window minimal anyway).
	if _, err := s.Catalog(ctx); err != nil {
		t.Fatal(err)
	}

	base := s.DB.LockManager().Acquisitions()
	v, err := s.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	viewCountAndHash(t, v)
	if _, err := v.AskGuided("average temperature Madison Wisconsin", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Browse(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.KeywordSearch("temperature", 3); err != nil {
		t.Fatal(err)
	}
	if got := s.DB.LockManager().Acquisitions() - base; got != 0 {
		t.Fatalf("reader acquired %d locks, want 0", got)
	}
}

// TestViewRaceReadersVsWritersAndCheckpointer is the core-layer MVCC
// torture test: concurrent Views assert snapshot-consistent repeatable
// reads (COUNT and content hash stable within a View) while writers
// insert and delete through the System writer path and a checkpointer
// runs fuzzy checkpoints — all under -race.
func TestViewRaceReadersVsWritersAndCheckpointer(t *testing.T) {
	s, _ := newSystem(t, 10, 2, 0)
	defer s.Close()
	generateTestStructure(t, s)
	ctx := context.Background()

	stop := make(chan struct{})
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	var wg sync.WaitGroup

	// Writers: each owns a disjoint entity and alternates insert/delete
	// so totals churn but stay bounded.
	const writers = 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			entity := fmt.Sprintf("Churn-%d", w)
			present := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				var stmt string
				if present {
					stmt = fmt.Sprintf("DELETE FROM extracted WHERE entity = '%s'", entity)
				} else {
					stmt = fmt.Sprintf(
						"INSERT INTO extracted VALUES ('%s', 'temperature', 'July', '%d', %d.0, 1.0)",
						entity, rng.Intn(100), rng.Intn(100))
				}
				if _, err := s.SQL(ctx, stmt); err != nil {
					if errors.Is(err, rdbms.ErrDeadlock) {
						continue
					}
					fail("writer %d: %v", w, err)
					return
				}
				present = !present
			}
		}(w)
	}

	// Checkpointer: fuzzy checkpoints against live traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				fail("checkpoint: %v", err)
				return
			}
		}
	}()

	// Readers: open a View, read the world twice, demand identical
	// results — then guided-query it for good measure.
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := s.View(ctx)
				if err != nil {
					fail("reader %d view: %v", r, err)
					return
				}
				c1, h1 := readCountAndHash(v)
				c2, h2 := readCountAndHash(v)
				if c1 != c2 || h1 != h2 {
					fail("reader %d: view not repeatable: count %d/%d hash %x/%x", r, c1, c2, h1, h2)
					v.Close()
					return
				}
				if _, err := v.AskGuided("average temperature Madison Wisconsin", 3); err != nil {
					fail("reader %d guided: %v", r, err)
					v.Close()
					return
				}
				v.Close()
			}
		}(r)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// readCountAndHash is viewCountAndHash without the testing.T plumbing
// (race-test goroutines must not call t.Fatal).
func readCountAndHash(v *View) (int64, uint64) {
	rs, err := v.SQL("SELECT COUNT(*) FROM extracted")
	if err != nil {
		return -1, 0
	}
	count := rs.Rows[0][0].I
	all, err := v.SQL("SELECT entity, attribute, qualifier, value FROM extracted")
	if err != nil {
		return -2, 0
	}
	var hash uint64
	for _, row := range all.Rows {
		h := fnv.New64a()
		for _, val := range row {
			fmt.Fprintf(h, "%s|", val.S)
		}
		hash += h.Sum64()
	}
	return count, hash
}
