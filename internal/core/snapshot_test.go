package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alert"
)

func TestSnapshotRefreshLoop(t *testing.T) {
	s, truth := newSystem(t, 8, 0, 0)
	// Initial generation.
	s.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 2)
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	// A standing alert on extreme July heat.
	if _, err := s.Subscribe(alert.Subscription{
		User: "watcher", Attribute: "temperature", Op: alert.OpGT, Threshold: 100,
	}); err != nil {
		t.Fatal(err)
	}
	firedBefore := s.Stats.Counter("core.alerts.fired")

	// Day 2 crawl: Madison's July line changes to 104 degrees.
	madison := s.Corpus.FindByTitle("Madison, Wisconsin")
	newText := strings.Replace(madison.Text,
		"The average temperature in July is 73.0 degrees Fahrenheit.",
		"The average temperature in July is 104.0 degrees Fahrenheit.", 1)
	if newText == madison.Text {
		t.Fatal("test setup: July line not found")
	}
	rev := s.CommitSnapshot(map[string]string{"Madison, Wisconsin": newText})
	if rev != 2 {
		t.Fatalf("revision = %d, want 2 (1 was the initial corpus)", rev)
	}

	changed, err := s.RefreshChanged("city")
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "Madison, Wisconsin" {
		t.Fatalf("changed: %v", changed)
	}
	// The structure reflects the new value.
	rs, err := s.SQL(context.Background(), `SELECT value FROM extracted
		WHERE entity = 'Madison, Wisconsin' AND qualifier = 'July'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "104.0" {
		t.Fatalf("refreshed value: %v", rs.Rows)
	}
	// No duplicate rows for the refreshed entity.
	rs, _ = s.SQL(context.Background(), `SELECT COUNT(*) FROM extracted
		WHERE entity = 'Madison, Wisconsin' AND attribute = 'temperature'`)
	if rs.Rows[0][0].I != 12 {
		t.Fatalf("temperature rows after refresh: %v", rs.Rows)
	}
	// The alert fired on the refreshed extraction.
	if s.Stats.Counter("core.alerts.fired") <= firedBefore {
		t.Fatal("alert did not fire on refreshed value")
	}
	// Keyword search sees the refreshed text.
	hits, err := s.KeywordSearch(context.Background(), "104.0 degrees July", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("index not rebuilt: %+v", hits)
	}
	// Other cities' ground truth is untouched.
	other := truth.Cities[1]
	rs, _ = s.SQL(context.Background(), "SELECT COUNT(*) FROM extracted WHERE entity = '"+other.Title+"' AND attribute = 'temperature'")
	if rs.Rows[0][0].I != 12 {
		t.Fatalf("unchanged city lost rows: %v", rs.Rows)
	}
	// History is preserved in the versioned store.
	old, ok := s.Snapshots().Checkout("Madison, Wisconsin", 1)
	if !ok || !strings.Contains(old, "73.0 degrees") {
		t.Fatal("revision 1 lost")
	}
}

func TestRefreshNoChangesIsNoop(t *testing.T) {
	s, _ := newSystem(t, 4, 0, 0)
	s.PlanIncremental(context.Background(), "city", []string{"temperature"}, 1)
	s.ExtractPending(context.Background(), "city", 0)
	s.Snapshots() // initialize with current corpus
	changed, err := s.RefreshChanged("city")
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("nothing changed but refresh touched: %v", changed)
	}
}

func TestRefreshUnknownExtractor(t *testing.T) {
	s, _ := newSystem(t, 3, 0, 0)
	if _, err := s.RefreshChanged("ghost"); err == nil {
		t.Fatal("unknown extractor should error")
	}
}
