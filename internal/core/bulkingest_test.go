package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/rdbms"
	"repro/internal/synth"
)

func newBulkIngestSystem(t *testing.T, workers int) *System {
	t.Helper()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: 60, People: 20, Filler: 40, MentionsPerPerson: 2,
	})
	sys, err := New(Config{Corpus: corpus, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBulkIngestEndToEnd drives the whole PR8 pipeline: cluster-fanned
// extraction shuffled by entity, COPY-style batch load with deferred
// index build on the fresh extracted table, catalog invalidation, and a
// second (incremental) ingest on the now-populated table.
func TestBulkIngestEndToEnd(t *testing.T) {
	sys := newBulkIngestSystem(t, 4)
	ctx := context.Background()

	if _, err := sys.BulkIngest(ctx, "nope", 0); err == nil || !strings.Contains(err.Error(), "unknown extractor") {
		t.Fatalf("unknown extractor: err=%v", err)
	}

	rep, err := sys.BulkIngest(ctx, "city", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 || rep.Docs == 0 {
		t.Fatalf("empty ingest: %+v", rep)
	}
	if !rep.Deferred {
		t.Fatalf("fresh table should take the deferred index build: %+v", rep)
	}
	if rep.Batches == 0 {
		t.Fatalf("no batch records logged: %+v", rep)
	}
	n, err := sys.ExtractedRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != rep.Rows {
		t.Fatalf("table holds %d rows, report says %d", n, rep.Rows)
	}

	// The catalog cache was invalidated, not fed per-row: guided queries
	// must rebuild it from the table and find the ingested structure.
	ans, err := sys.AskGuided(ctx, "temperature Madison", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Candidates) == 0 {
		t.Fatal("catalog rebuild after bulk ingest found no structure")
	}

	// Second ingest hits non-empty indexes: the incremental per-chunk
	// insert path, appending a duplicate generation of rows.
	rep2, err := sys.BulkIngest(ctx, "city", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Deferred {
		t.Fatal("populated indexes must use the incremental path")
	}
	if rep2.Rows != rep.Rows {
		t.Fatalf("second ingest loaded %d rows, first %d", rep2.Rows, rep.Rows)
	}
	n2, err := sys.ExtractedRows()
	if err != nil {
		t.Fatal(err)
	}
	if n2 != rep.Rows+rep2.Rows {
		t.Fatalf("table holds %d rows after two ingests of %d", n2, rep.Rows)
	}
}

// TestBulkIngestEquivalenceOracle checks the ingested table against two
// independent derivations: the sequential ExtractAll reference (row
// count and the folded content hash over the identity columns must
// match exactly), and a second system ingesting the same corpus with a
// different worker and partition count (the content hash — order
// independent by construction — must be identical, so the shuffle plan
// cannot change what was loaded).
func TestBulkIngestEquivalenceOracle(t *testing.T) {
	ctx := context.Background()
	sysA := newBulkIngestSystem(t, 4)
	repA, err := sysA.BulkIngest(ctx, "city", 8)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same pipeline run sequentially, folded by hand with
	// the engine's public hash over the entity/attribute/qualifier cols.
	fields := extract.DefaultCityPipeline().ExtractAll(sysA.Corpus.Docs())
	if len(fields) != repA.Rows {
		t.Fatalf("bulk ingest loaded %d rows, sequential extraction yields %d", repA.Rows, len(fields))
	}
	var want uint64
	for _, f := range fields {
		want += rdbms.ContentHashValues(
			rdbms.NewString(f.Entity), rdbms.NewString(f.Attribute), rdbms.NewString(f.Qualifier))
	}
	got, ok := sysA.DB.ContentHash(TableName)
	if !ok {
		t.Fatal("content hash disabled on the extracted table")
	}
	if got != want {
		t.Fatalf("content hash %x after bulk ingest, sequential reference %x", got, want)
	}

	// Different parallelism, same corpus: identical table content.
	sysB := newBulkIngestSystem(t, 1)
	repB, err := sysB.BulkIngest(ctx, "city", 1)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Rows != repA.Rows {
		t.Fatalf("1-way ingest loaded %d rows, 8-way loaded %d", repB.Rows, repA.Rows)
	}
	gotB, _ := sysB.DB.ContentHash(TableName)
	if gotB != got {
		t.Fatalf("content hash differs across partition plans: %x vs %x", gotB, got)
	}

	// And the query surface agrees byte for byte on an ordered stream
	// (population is unique per entity, so the order has no ties for the
	// stable sort to resolve by load order).
	const q = "SELECT entity, value FROM extracted WHERE attribute = 'population' ORDER BY entity LIMIT 50"
	rsA, err := sysA.SQL(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := sysB.SQL(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rsA.String() != rsB.String() {
		t.Fatalf("ordered streams differ:\n%s\nvs\n%s", rsA.String(), rsB.String())
	}
}
