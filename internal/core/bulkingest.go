package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/doc"
	"repro/internal/rdbms"
	"repro/internal/uql"
)

// Parallel bulk ingest (PR8): the paper's generation pipeline at corpus
// scale. Extraction fans out over the MapReduce cluster — one map task
// per document, shuffled by entity so each reduce partition holds
// entity-contiguous runs — and the extracted rows then load through the
// engine's COPY-style batch path: one logged batch record per chunk
// instead of per-row WAL records, deferred sorted index builds on a
// fresh table, per-batch content-hash folding, and a closing checkpoint
// fence. This is the route a large corpus takes instead of the per-row
// materialize path ExtractPending uses for incremental demand.

// BulkIngestReport summarizes one bulk ingest run.
type BulkIngestReport struct {
	Docs       int           // documents mapped
	Rows       int           // extracted rows loaded
	Batches    int           // logged batch records (chunk commits)
	Partitions int           // reduce partitions (entity shards)
	Workers    int           // cluster workers that ran the extraction
	Deferred   bool          // indexes were built from sorted runs at the fence
	Elapsed    time.Duration // wall clock, extraction through fence
}

// RowsPerSec is the headline ingest metric.
func (r *BulkIngestReport) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// BulkIngest extracts every corpus document with the named extractor's
// full pipeline on the cluster and bulk-loads the results into the
// extracted table. partitions <= 0 shards by the worker count. The load
// is chunked into durable all-or-nothing batches and fenced with a
// checkpoint; on error, chunks already durable stay (the report counts
// them) and the catalog cache is invalidated either way.
func (s *System) BulkIngest(ctx context.Context, extractor string, partitions int) (*BulkIngestReport, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reg, ok := s.Env.Extractors[extractor]
	if !ok {
		return nil, fmt.Errorf("core: unknown extractor %q", extractor)
	}
	cl := s.Env.Cluster
	if cl == nil {
		cl = cluster.New(cluster.Config{Workers: 1})
	}
	if partitions <= 0 {
		partitions = cl.Workers()
	}
	start := time.Now()

	// Map: extract one document, keyed by entity. Reduce: identity — the
	// shuffle has already grouped and sorted by entity, which is what
	// gives the loader entity-contiguous runs.
	docs := s.Corpus.Docs()
	inputs := make([]any, len(docs))
	for i, d := range docs {
		inputs[i] = d
	}
	pipeline := reg.Pipeline
	pairs, err := cl.Run(inputs,
		func(item any, emit func(key string, value any)) error {
			d := item.(*doc.Document)
			for _, f := range pipeline.ExtractDoc(d) {
				emit(f.Entity, uql.Row{
					Entity: f.Entity, Attribute: f.Attribute,
					Qualifier: f.Qualifier, Value: f.Value, Conf: f.Conf,
				})
			}
			return nil
		},
		func(key string, values []any, emit func(value any)) error {
			for _, v := range values {
				emit(v)
			}
			return nil
		},
		partitions)
	if err != nil {
		return nil, err
	}

	rows := make([]uql.Row, 0, len(pairs))
	tups := make([]rdbms.Tuple, 0, len(pairs))
	for _, p := range pairs {
		r := p.Value.(uql.Row)
		s.Debugger.Observe(r.Attribute, r.Value)
		rows = append(rows, r)
		tups = append(tups, uql.StoreRow(r))
	}

	report := &BulkIngestReport{
		Docs:       len(docs),
		Partitions: partitions,
		Workers:    cl.Workers(),
	}
	stats, err := s.DB.BulkLoad(ctx, TableName, tups)
	report.Rows = stats.Rows
	report.Batches = stats.Batches
	report.Deferred = stats.Deferred

	// The batch path bypasses the per-row addRow delta feed, so the
	// catalog cache generation is stale regardless of outcome: invalidate
	// and let the next reader rebuild from the table.
	s.mu.Lock()
	s.cat.invalidate()
	s.dropCatSnapLocked()
	s.mu.Unlock()
	if err != nil {
		return report, err
	}
	report.Elapsed = time.Since(start)

	s.Stats.Inc("core.bulkingest.docs", int64(report.Docs))
	s.Stats.Inc("core.bulkingest.rows", int64(report.Rows))
	s.Stats.Inc("core.bulkingest.batches", int64(report.Batches))
	s.evolveSchema(rows)
	return report, nil
}
