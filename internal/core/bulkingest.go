package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/doc"
	"repro/internal/rdbms"
	"repro/internal/uql"
)

// Parallel bulk ingest (PR8): the paper's generation pipeline at corpus
// scale. Extraction fans out over the MapReduce cluster — one map task
// per document, shuffled by entity so each reduce partition holds
// entity-contiguous runs — and the extracted rows then load through the
// engine's COPY-style batch path: one logged batch record per chunk
// instead of per-row WAL records, deferred sorted index builds on a
// fresh table, per-batch content-hash folding, and a closing checkpoint
// fence. This is the route a large corpus takes instead of the per-row
// materialize path ExtractPending uses for incremental demand.
//
// PR9 splits the run into ExtractAll (cluster extraction producing the
// global row stream) and BulkLoadRows (load one row slice into THIS
// system), so a sharded deployment can extract once and route slices of
// the same stream to the shards that own them.

// BulkIngestReport summarizes one bulk ingest run.
type BulkIngestReport struct {
	Docs       int           // documents mapped
	Rows       int           // extracted rows loaded
	Batches    int           // logged batch records (chunk commits)
	Partitions int           // reduce partitions (entity shards)
	Workers    int           // cluster workers that ran the extraction
	Deferred   bool          // indexes were built from sorted runs at the fence
	Elapsed    time.Duration // wall clock, extraction through fence
}

// RowsPerSec is the headline ingest metric.
func (r *BulkIngestReport) RowsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rows) / r.Elapsed.Seconds()
}

// ExtractStats describes the cluster run behind one ExtractAll call.
type ExtractStats struct {
	Docs       int // documents mapped
	Partitions int // reduce partitions (entity shards)
	Workers    int // cluster workers that ran the extraction
}

// ExtractAll runs the named extractor's full pipeline over every corpus
// document on the cluster and returns the extracted rows sorted by
// (entity, attribute, qualifier, value, conf). The cluster only orders
// its output by key — same-key value order depends on which worker
// mapped which document — so the total sort here is what makes the
// stream deterministic for a given corpus and extractor, independent of
// scheduling and partition count. Entity-contiguous runs are preserved
// for the loader, and the sharded equivalence oracle leans on the
// cross-run determinism. partitions <= 0 shards by worker count.
func (s *System) ExtractAll(ctx context.Context, extractor string, partitions int) ([]uql.Row, ExtractStats, error) {
	var es ExtractStats
	if err := s.beginOp(); err != nil {
		return nil, es, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return nil, es, err
	}
	reg, ok := s.Env.Extractors[extractor]
	if !ok {
		return nil, es, fmt.Errorf("core: unknown extractor %q", extractor)
	}
	cl := s.Env.Cluster
	if cl == nil {
		cl = cluster.New(cluster.Config{Workers: 1})
	}
	if partitions <= 0 {
		partitions = cl.Workers()
	}

	// Map: extract one document, keyed by entity. Reduce: identity — the
	// shuffle has already grouped and sorted by entity, which is what
	// gives the loader entity-contiguous runs.
	docs := s.Corpus.Docs()
	inputs := make([]any, len(docs))
	for i, d := range docs {
		inputs[i] = d
	}
	pipeline := reg.Pipeline
	pairs, err := cl.Run(inputs,
		func(item any, emit func(key string, value any)) error {
			d := item.(*doc.Document)
			for _, f := range pipeline.ExtractDoc(d) {
				emit(f.Entity, uql.Row{
					Entity: f.Entity, Attribute: f.Attribute,
					Qualifier: f.Qualifier, Value: f.Value, Conf: f.Conf,
				})
			}
			return nil
		},
		func(key string, values []any, emit func(value any)) error {
			for _, v := range values {
				emit(v)
			}
			return nil
		},
		partitions)
	if err != nil {
		return nil, es, err
	}
	rows := make([]uql.Row, 0, len(pairs))
	for _, p := range pairs {
		rows = append(rows, p.Value.(uql.Row))
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		if a.Attribute != b.Attribute {
			return a.Attribute < b.Attribute
		}
		if a.Qualifier != b.Qualifier {
			return a.Qualifier < b.Qualifier
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Conf < b.Conf
	})
	es = ExtractStats{Docs: len(docs), Partitions: partitions, Workers: cl.Workers()}
	s.Stats.Inc("core.bulkingest.docs", int64(es.Docs))
	return rows, es, nil
}

// BulkLoadRows loads an already-extracted row slice into this system's
// extracted table through the COPY-style batch path, observes each value
// for debugging, invalidates the catalog cache, and evolves the schema.
// The load is chunked into durable all-or-nothing batches and fenced
// with a checkpoint; on error, chunks already durable stay (the report
// counts them) and the catalog cache is invalidated either way.
func (s *System) BulkLoadRows(ctx context.Context, rows []uql.Row) (*BulkIngestReport, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	tups := make([]rdbms.Tuple, 0, len(rows))
	for _, r := range rows {
		s.Debugger.Observe(r.Attribute, r.Value)
		tups = append(tups, uql.StoreRow(r))
	}

	report := &BulkIngestReport{}
	stats, err := s.DB.BulkLoad(ctx, TableName, tups)
	report.Rows = stats.Rows
	report.Batches = stats.Batches
	report.Deferred = stats.Deferred

	// The batch path bypasses the per-row addRow delta feed, so the
	// catalog cache generation is stale regardless of outcome: invalidate
	// and let the next reader rebuild from the table.
	s.mu.Lock()
	s.cat.invalidate()
	s.dropCatSnapLocked()
	s.mu.Unlock()
	if err != nil {
		return report, err
	}
	report.Elapsed = time.Since(start)

	s.Stats.Inc("core.bulkingest.rows", int64(report.Rows))
	s.Stats.Inc("core.bulkingest.batches", int64(report.Batches))
	s.evolveSchema(rows)
	return report, nil
}

// BulkIngest extracts every corpus document with the named extractor's
// full pipeline on the cluster and bulk-loads the results into the
// extracted table. partitions <= 0 shards by the worker count. It is
// ExtractAll composed with BulkLoadRows; see both for the contract.
func (s *System) BulkIngest(ctx context.Context, extractor string, partitions int) (*BulkIngestReport, error) {
	start := time.Now()
	rows, es, err := s.ExtractAll(ctx, extractor, partitions)
	if err != nil {
		return nil, err
	}
	report, err := s.BulkLoadRows(ctx, rows)
	if report != nil {
		report.Docs = es.Docs
		report.Partitions = es.Partitions
		report.Workers = es.Workers
		if err == nil {
			report.Elapsed = time.Since(start)
		}
	}
	return report, err
}
