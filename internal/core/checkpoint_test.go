package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/synth"
	"repro/internal/uql"
)

// TestCheckpointDoesNotStallWriters: the engine's checkpoints are fuzzy,
// so a disk-backed System can checkpoint continuously while write paths
// (CorrectValue transactions) and guided-query reads keep running. Under
// the pre-PR5 protocol this was impossible — Checkpoint returned an
// error whenever a transaction was active, so core could never
// checkpoint mid-traffic at all.
func TestCheckpointDoesNotStallWriters(t *testing.T) {
	dir := t.TempDir()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 11, Cities: 12, People: 4, Filler: 10, MentionsPerPerson: 2,
	})
	s, _, err := OpenDir(dir, Config{Corpus: corpus}, func(s *System) error {
		_, err := s.Generate(context.Background(), warmGenProgram, uql.Options{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Users.Register("alice", "pw", "ordinary")
	for i := 0; i < 8; i++ {
		s.Users.RecordFeedbackOutcome("alice", true)
	}
	rs, err := s.SQL(context.Background(), "SELECT entity, qualifier FROM extracted WHERE attribute = 'temperature' LIMIT 1")
	if err != nil || len(rs.Rows) == 0 {
		t.Fatalf("no extracted row to correct: %v", err)
	}
	ent, qual := rs.Rows[0][0].S, rs.Rows[0][1].S

	// Three rounds of: launch a checkpoint, keep writing while it is in
	// flight, require BOTH to finish. Pre-PR5 the checkpoint call itself
	// errored out whenever a transaction was active, so this loop could
	// not complete at all; post-PR5 the writes and the checkpoint
	// interleave freely (even on a single-CPU host, where a spinning
	// checkpointer would be unfair to assert on).
	const rounds, writesPerRound = 3, 12
	writes := 0
	want := ""
	for r := 0; r < rounds; r++ {
		ckptDone := make(chan error, 1)
		go func() { ckptDone <- s.Checkpoint() }()
		for i := 0; i < writesPerRound; i++ {
			want = fmt.Sprintf("%d.5", writes)
			if err := s.CorrectValue(context.Background(), "alice", ent, "temperature", qual, want); err != nil {
				t.Fatalf("write %d during checkpoint round %d: %v", writes, r, err)
			}
			if _, err := s.Catalog(context.Background()); err != nil {
				t.Fatalf("catalog read during checkpoint round %d: %v", r, err)
			}
			writes++
		}
		if err := <-ckptDone; err != nil {
			t.Fatalf("checkpoint round %d under live writes: %v", r, err)
		}
	}
	checkpoints := rounds

	q := fmt.Sprintf("SELECT value FROM extracted WHERE entity = '%s' AND qualifier = '%s'", ent, qual)
	rs, err = s.SQL(context.Background(), q)
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].S != want {
		t.Fatalf("corrections lost under checkpoints: %v (err=%v, want %q)", rs.Rows, err, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpointed state reopens intact.
	s2, rep, err := OpenDir(dir, Config{Corpus: corpus}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reopened {
		t.Fatal("reopen not detected")
	}
	rs, err = s2.SQL(context.Background(), q)
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].S != want {
		t.Fatalf("corrected value lost across reopen: %v (err=%v, want %q)", rs.Rows, err, want)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d checkpoints interleaved with %d corrections", checkpoints, writes)
}
