// Package core is the end-to-end system of the paper: it wires every
// substrate into the data generation and exploitation (DGE) model of
// Section 3. Generation runs declarative UQL programs (IE + II + HI) or an
// incremental best-effort extraction planner; exploitation offers keyword
// search, guided reformulation into structured queries, SQL, browsing,
// and alerts — with seamless movement between the modes.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/browse"
	"repro/internal/cluster"
	"repro/internal/debugger"
	"repro/internal/doc"
	"repro/internal/extract"
	"repro/internal/hi"
	"repro/internal/monitor"
	"repro/internal/rdbms"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/uql"
	"repro/internal/users"
	"repro/internal/vstore"
	"repro/internal/wiki"
)

// TableName is the EAV table holding the final extracted structure.
const TableName = "extracted"

// ErrClosed is returned by every serving operation once Close has begun:
// the typed signal a draining server relays to late requests instead of
// letting them race the engine teardown. It is also what a second,
// concurrent Close waits behind — Close itself is idempotent and returns
// the first close's result to every caller.
var ErrClosed = errors.New("core: system is closed")

// Config assembles a System.
type Config struct {
	Corpus  *doc.Corpus
	Workers int       // cluster workers (0 = sequential extraction)
	Crowd   *hi.Crowd // optional: enables HI statements and feedback
	// Dir, when set, backs the database with crash-safe on-disk storage
	// (rdbms.OpenDir under this directory) instead of in-memory pager and
	// WAL: the extracted structure survives Close and process death, and
	// reopening the same Dir recovers it. Empty keeps the in-memory
	// database (tests, benchmarks, throwaway runs).
	Dir string
}

// System is the running end-to-end instance.
type System struct {
	Corpus   *doc.Corpus
	DB       *rdbms.DB
	Env      *uql.Env
	Index    *search.Index
	Users    *users.Manager
	Wiki     *wiki.Store
	Alerts   *alert.Center
	Debugger *debugger.Debugger
	// Schema tracks the evolving logical schema of the extracted
	// structure: attributes register themselves (with inferred types) the
	// first time they are materialized, so the schema history records how
	// the best-effort structure grew.
	Schema *schema.Evolver
	Stats  *monitor.Stats

	// mu is writer-side coordination only: it guards the task queue, the
	// coverage counters, and the catalog cache's mutable bookkeeping. The
	// read hot path (View, AskGuided, KeywordSearch) never takes it — it
	// loads the published catSnap from catPtr with one atomic load.
	mu        sync.Mutex
	queue     taskQueue    // pending incremental extraction tasks
	cat       catalogCache // incrementally maintained reformulation catalog
	done      map[string]int
	total     map[string]int
	snapshots *vstore.Store // lazily initialized by Snapshots()

	// catPtr publishes the serving-side catalog state RCU-style: readers
	// atomically load an immutable *catSnap and use it without locks;
	// invalidating writers swap in nil (copy-on-invalidate) and the next
	// reader rebuilds and republishes under mu. See catalogSnap.
	catPtr atomic.Pointer[catSnap]

	// Lifecycle state: every serving operation is bracketed by
	// beginOp/endOp, and Close (a) flips closing so new operations get
	// ErrClosed, (b) waits for in-flight operations to finish, then (c)
	// tears the storage down — the drain hook the network server builds
	// its graceful shutdown on. lifeMu is strictly leaf-level: nothing
	// under it blocks on s.mu or the engine.
	lifeMu    sync.Mutex
	lifeCond  *sync.Cond
	inflight  int
	closing   bool
	closeDone chan struct{} // closed when the winning Close finishes
	closeErr  error         // its result, readable after closeDone

	diskBacked bool   // the DB persists on disk and Close must release it
	warmDir    string // warm-state directory Close saves into (OpenDir)
}

// task is one unit of incremental best-effort extraction: one attribute
// over one partition of the corpus.
type task struct {
	attribute string
	docs      []*doc.Document
	priority  float64
	part      int
}

// New builds a system over a corpus. With cfg.Dir set the database opens
// from (or creates) crash-safe on-disk storage; an existing directory
// reopens with its extracted table and indexes already in place.
func New(cfg Config) (*System, error) {
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("core: corpus required")
	}
	var db *rdbms.DB
	var err error
	if cfg.Dir != "" {
		db, err = rdbms.OpenDir(cfg.Dir, rdbms.Options{BufferPages: 512})
	} else {
		db, err = rdbms.Open(rdbms.NewMemPager(), rdbms.NewMemWAL(), rdbms.Options{BufferPages: 512})
	}
	if err != nil {
		return nil, err
	}
	if t := db.Table(TableName); t == nil {
		if err := db.CreateTable(uql.StoreSchema(TableName)); err != nil {
			return nil, err
		}
	}
	for _, col := range []string{"entity", "attribute"} {
		if db.Table(TableName).Indexes[col] == nil {
			if err := db.CreateIndex(TableName, col); err != nil {
				return nil, err
			}
		}
	}
	// The engine maintains the (entity, attribute, qualifier) multiset
	// hash incrementally and persists it with every checkpoint, so a
	// fresh process verifies warm-start snapshots in O(1) instead of
	// rescanning the table (a no-op on reopen: the spec is already in the
	// on-disk catalog and the recovered digest is kept).
	if err := db.EnableContentHash(TableName, []string{"entity", "attribute", "qualifier"}); err != nil {
		return nil, err
	}
	env := uql.NewEnv()
	env.Sources["docs"] = cfg.Corpus
	env.DB = db
	env.Crowd = cfg.Crowd
	if cfg.Workers > 0 {
		env.Cluster = cluster.New(cluster.Config{Workers: cfg.Workers})
	}
	env.Extractors["city"] = uql.RegisteredExtractor{
		Pipeline: extract.DefaultCityPipeline(),
		Hints: map[string]string{
			"temperature": "average temperature in",
			"population":  "population",
			"founded":     "founded",
		},
	}
	env.Extractors["person"] = uql.RegisteredExtractor{
		Pipeline: extract.DefaultPersonPipeline(),
		Hints: map[string]string{
			"person": " ",
			"born":   "born in",
		},
	}
	s := &System{
		Corpus:     cfg.Corpus,
		DB:         db,
		diskBacked: cfg.Dir != "",
		Env:        env,
		Index:      search.BuildIndex(cfg.Corpus),
		Users:      users.NewManager(),
		Wiki:       wiki.NewStore(),
		Alerts:     alert.NewCenter(),
		Debugger:   debugger.New(),
		Schema:     schema.NewEvolver(TableName),
		Stats:      env.Stats,
		done:       map[string]int{},
		total:      map[string]int{},
	}
	s.lifeCond = sync.NewCond(&s.lifeMu)
	return s, nil
}

// beginOp admits one serving operation, or refuses it with ErrClosed once
// Close has begun. Every admitted operation must be paired with endOp
// (deferred), which is what Close's drain waits on.
func (s *System) beginOp() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.closing {
		return ErrClosed
	}
	s.inflight++
	return nil
}

func (s *System) endOp() {
	s.lifeMu.Lock()
	s.inflight--
	if s.closing && s.inflight == 0 {
		s.lifeCond.Broadcast()
	}
	s.lifeMu.Unlock()
}

// InFlightOps reports the number of serving operations currently between
// beginOp and endOp (diagnostics; the server's health endpoint and the
// drain tests read it).
func (s *System) InFlightOps() int {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.inflight
}

// Closing reports whether Close has begun (new operations are refused).
func (s *System) Closing() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.closing
}

// --- Published catalog snapshot (RCU) -----------------------------------------

// catSnap is one published generation of the serving-side catalog state.
// The struct itself is immutable after publication; the reformulator it
// points at is the cache's live one, which is internally synchronized and
// absorbs incremental addRow deltas in place — so a published snapshot
// stays current across materialize/CorrectValue writes and only full
// invalidations (UQL STORE, direct SQL writes, warm installs, rebuilds)
// force a new generation.
type catSnap struct {
	reform *reformulate.Reformulator
	epoch  int64 // cache epoch at publication (diagnostics)
}

// dropCatSnapLocked unpublishes the current catalog snapshot. Callers hold
// s.mu and call this whenever the cache is invalidated or its reformulator
// replaced, so no reader can keep serving from a discarded generation's
// delta feed.
func (s *System) dropCatSnapLocked() {
	s.catPtr.Store(nil)
}

// ensureCatalogLocked makes the catalog cache valid, rebuilding it with
// one full scan if an invalidating write discarded it. The rebuild resets
// the cache's reformulator, so any published snapshot (whose reformulator
// would silently stop receiving deltas) is dropped. Caller holds s.mu.
func (s *System) ensureCatalogLocked() error {
	if s.cat.valid {
		return nil
	}
	s.dropCatSnapLocked()
	return s.cat.rebuildFrom(s.DB, TableName)
}

// catalogSnap returns the published catalog snapshot. The fast path is a
// single atomic load — no mutex, no engine locks — which is what lets
// AskGuided and View-based reads scale across cores. When no snapshot is
// live (first read, or the first read after an invalidation), the slow
// path rebuilds the cache if necessary and publishes a new generation
// under s.mu.
func (s *System) catalogSnap() (*catSnap, error) {
	if cs := s.catPtr.Load(); cs != nil {
		return cs, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs := s.catPtr.Load(); cs != nil {
		return cs, nil
	}
	if err := s.ensureCatalogLocked(); err != nil {
		return nil, err
	}
	cs := &catSnap{reform: s.cat.reformulator(TableName), epoch: s.cat.epoch}
	s.catPtr.Store(cs)
	return cs, nil
}

// --- Generation ---------------------------------------------------------------

// Generate runs a UQL program against the system environment. Attributes
// produced by the program register themselves in the evolving schema. ctx
// is consulted at entry (program execution itself is not cancellable
// mid-statement; each STORE commits its own transaction).
func (s *System) Generate(ctx context.Context, program string, opts uql.Options) (*uql.Plan, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := uql.Exec(program, s.Env, opts)
	// UQL STORE statements insert into the extracted table directly,
	// bypassing materialize's incremental cache maintenance; force the next
	// Catalog() to rescan. This must happen even when Exec errors: ops run
	// sequentially and each STORE commits its own transaction, so an error
	// later in the program does not undo earlier STOREs.
	s.mu.Lock()
	s.cat.invalidate()
	s.dropCatSnapLocked()
	s.mu.Unlock()
	if err != nil {
		return plan, err
	}
	for _, name := range sortedRelationNames(s.Env.Relations) {
		s.evolveSchema(s.Env.Relations[name])
	}
	return plan, nil
}

// PlanIncremental enqueues best-effort extraction tasks for the given
// attributes using the named extractor, partitioning the corpus into
// parts chunks. Nothing is extracted until ExtractPending runs; queries
// meanwhile see whatever has been materialized (Section 3.2's
// "incremental, best-effort fashion").
func (s *System) PlanIncremental(ctx context.Context, extractor string, attributes []string, parts int) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return err
	}
	reg, ok := s.Env.Extractors[extractor]
	if !ok {
		return fmt.Errorf("core: unknown extractor %q", extractor)
	}
	_ = reg
	partitions := s.Corpus.Partition(parts)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, attr := range attributes {
		for pi, p := range partitions {
			s.queue.push(task{
				attribute: attr, docs: p, part: pi,
				priority: 0,
			})
			s.total[attr]++
		}
	}
	return nil
}

// Demand raises the priority of an attribute's pending tasks — called when
// the query workload touches the attribute, so extraction effort follows
// user demand.
func (s *System) Demand(ctx context.Context, attribute string, boost float64) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue.boost(attribute, boost)
	return nil
}

// PendingTasks returns the number of queued tasks.
func (s *System) PendingTasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.len()
}

// Coverage returns the fraction of an attribute's planned tasks that have
// completed, so answers can be qualified ("based on 40% of the corpus").
// An attribute with no incremental plan is fully covered (whatever was
// generated, was generated in full).
func (s *System) Coverage(attribute string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.total[attribute]
	if t == 0 {
		return 1
	}
	return float64(s.done[attribute]) / float64(t)
}

// ExtractPending runs up to budget queued tasks (highest priority first),
// materializing results into the extracted table. It returns the number
// of tasks executed.
func (s *System) ExtractPending(ctx context.Context, extractor string, budget int) (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	reg, ok := s.Env.Extractors[extractor]
	if !ok {
		return 0, fmt.Errorf("core: unknown extractor %q", extractor)
	}
	s.mu.Lock()
	n := budget
	if n <= 0 || n > s.queue.len() {
		n = s.queue.len()
	}
	batch := make([]task, 0, n)
	for len(batch) < n {
		tk, ok := s.queue.pop()
		if !ok {
			break
		}
		batch = append(batch, tk)
	}
	s.mu.Unlock()

	for done, tk := range batch {
		// Honor cancellation between tasks: completed tasks stay
		// materialized (incremental extraction is resumable by design) and
		// the count reports how many ran.
		if err := ctx.Err(); err != nil {
			return done, err
		}
		rows := s.extractTask(reg, tk)
		if err := s.materialize(rows); err != nil {
			return done, err
		}
		s.mu.Lock()
		s.done[tk.attribute]++
		s.mu.Unlock()
		s.Stats.Inc("core.incremental.tasks", 1)
	}
	return len(batch), nil
}

func (s *System) extractTask(reg uql.RegisteredExtractor, tk task) []uql.Row {
	hint := reg.Hints[tk.attribute]
	// Best-effort extraction runs only the operators that can produce the
	// demanded attribute.
	pipeline := reg.Pipeline.ForAttributes(tk.attribute)
	var rows []uql.Row
	for _, d := range tk.docs {
		if hint != "" && hint != " " && !strings.Contains(d.Text, hint) {
			continue
		}
		for _, f := range pipeline.ExtractDoc(d) {
			if f.Attribute != tk.attribute {
				continue
			}
			s.Debugger.Observe(f.Attribute, f.Value)
			rows = append(rows, uql.Row{
				Entity: f.Entity, Attribute: f.Attribute,
				Qualifier: f.Qualifier, Value: f.Value, Conf: f.Conf,
			})
		}
	}
	return rows
}

// materialize appends rows to the extracted table in one transaction and
// evaluates alert subscriptions against them.
func (s *System) materialize(rows []uql.Row) error {
	if len(rows) == 0 {
		return nil
	}
	tx := s.DB.Begin()
	for _, r := range rows {
		if _, err := tx.Insert(TableName, uql.StoreRow(r)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	// Fold the committed rows into the catalog cache (after Commit, so the
	// cache never sees rows an abort would retract, and without holding
	// rdbms locks under s.mu). Each row also folds into the content hash:
	// materialize is the only path that adds rows while the cache stays
	// valid, so the hash tracks the table's (entity, attribute,
	// qualifier) multiset exactly.
	s.mu.Lock()
	for _, r := range rows {
		s.cat.addRow(r.Entity, r.Attribute, r.Qualifier)
		s.cat.foldRowHash(r.Entity, r.Attribute, r.Qualifier)
	}
	s.mu.Unlock()
	s.Stats.Inc("core.materialized.rows", int64(len(rows)))
	s.evolveSchema(rows)
	alertRows := make([]alert.Row, len(rows))
	for i, r := range rows {
		alertRows[i] = alert.Row{
			Entity: r.Entity, Attribute: r.Attribute,
			Qualifier: r.Qualifier, Value: r.Value, Conf: r.Conf,
		}
	}
	if fired := s.Alerts.Evaluate(alertRows); len(fired) > 0 {
		s.Stats.Inc("core.alerts.fired", int64(len(fired)))
	}
	return nil
}

// MaterializeRelation stores a named UQL relation into the extracted table
// (used after Generate built relations without a STORE statement).
func (s *System) MaterializeRelation(ctx context.Context, name string) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return err
	}
	rows, ok := s.Env.Relations[name]
	if !ok {
		return fmt.Errorf("core: unknown relation %q", name)
	}
	return s.materialize(rows)
}

// evolveSchema registers newly seen attributes in the logical schema with
// a type inferred from their values (§3.2: the schema of incrementally
// generated structure evolves over time).
func (s *System) evolveSchema(rows []uql.Row) {
	samples := map[string][]string{}
	for _, r := range rows {
		if len(samples[r.Attribute]) < 30 {
			samples[r.Attribute] = append(samples[r.Attribute], r.Value)
		}
	}
	cur := s.Schema.Current()
	known := map[string]bool{}
	for _, a := range cur.Attributes {
		known[a.Name] = true
	}
	attrs := make([]string, 0, len(samples))
	for a := range samples {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		if known[a] {
			continue
		}
		// Errors (duplicate adds from a concurrent materialize) are
		// harmless; the attribute is already registered.
		if _, err := s.Schema.AddAttribute(a, schema.InferType(samples[a])); err == nil {
			s.Stats.Inc("core.schema.attributes", 1)
		}
	}
}

// ExplainFact renders the lineage of an extracted fact: which operator
// pulled it from which document, and what feedback touched it. It
// consults the UQL environment's provenance graph via the relations that
// produced the fact.
func (s *System) ExplainFact(ctx context.Context, entity, attribute, qualifier string) (string, error) {
	if err := s.beginOp(); err != nil {
		return "", err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.explainFact(entity, attribute, qualifier)
}

// explainFact is the lineage lookup shared by System.ExplainFact and
// View.ExplainFact; callers handle lifecycle admission and ctx.
func (s *System) explainFact(entity, attribute, qualifier string) (string, error) {
	for _, name := range sortedRelationNames(s.Env.Relations) {
		for _, r := range s.Env.Relations[name] {
			if r.Entity == entity && r.Attribute == attribute && r.Qualifier == qualifier && r.Prov != 0 {
				return s.Env.Prov.Explain(r.Prov), nil
			}
		}
	}
	return "", fmt.Errorf("core: no provenance recorded for %s.%s[%s]", entity, attribute, qualifier)
}

func sortedRelationNames(rels map[string][]uql.Row) []string {
	out := make([]string, 0, len(rels))
	for n := range rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- Exploitation ---------------------------------------------------------------

// KeywordSearch is exploitation mode 1: ranked document hits. It is a
// one-shot View wrapper; the error return exists for the lifecycle
// (ErrClosed) and cancellation cases a serving front end must distinguish
// from "no hits".
func (s *System) KeywordSearch(ctx context.Context, query string, k int) ([]search.Hit, error) {
	v, err := s.View(ctx)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.KeywordSearch(query, k)
}

// Catalog summarizes the extracted structure for the reformulator. It is
// served from the incrementally maintained catalog cache; only the first
// call after an invalidating write (Generate's STORE, a direct SQL write)
// scans the table. The returned catalog shares slices with the cache and
// must be treated as read-only.
func (s *System) Catalog(ctx context.Context) (reformulate.Catalog, error) {
	if err := s.beginOp(); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureCatalogLocked(); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	return s.cat.snapshot(TableName), nil
}

// RefreshCatalog discards the catalog cache and rebuilds it with one full
// table scan, installing and returning the fresh catalog. It collapses the
// old Catalog()/CatalogScan() split into one explicit operation: as the
// verification baseline, comparing a prior Catalog() result against
// RefreshCatalog()'s detects incremental-maintenance drift — and because
// the rebuilt state is installed, a refresh also repairs any drift it
// finds. The rebuild scans through an MVCC snapshot, so it neither takes
// engine locks nor blocks concurrent writers.
func (s *System) RefreshCatalog(ctx context.Context) (reformulate.Catalog, error) {
	if err := s.beginOp(); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	defer s.endOp()
	if err := ctx.Err(); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropCatSnapLocked()
	if err := s.cat.rebuildFrom(s.DB, TableName); err != nil {
		return reformulate.Catalog{Table: TableName}, err
	}
	return s.cat.snapshot(TableName), nil
}

// GuidedAnswer is the result of the keyword -> structured transition: the
// ranked candidate forms, plus the executed answer of the top candidate
// and the coverage statistics that qualify it.
type GuidedAnswer struct {
	Candidates []reformulate.Candidate
	Answer     *rdbms.ResultSet
	Coverage   float64
}

// AskGuided is exploitation mode 2 (the §3.2 flow): take a keyword query,
// guess candidate structured queries, execute the best one, and report
// extraction coverage for the touched attribute. It is a one-shot View
// wrapper — the candidate executes against an MVCC snapshot with zero
// lock acquisitions — plus the demand signal a pinned View deliberately
// omits: the touched attribute's pending extraction tasks are boosted so
// effort follows the query workload. A ctx deadline cuts the structured
// query off mid-scan.
func (s *System) AskGuided(ctx context.Context, query string, k int) (*GuidedAnswer, error) {
	v, err := s.View(ctx)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	out, err := v.AskGuided(query, k)
	if err != nil {
		return nil, err
	}
	if len(out.Candidates) > 0 {
		if err := s.Demand(ctx, out.Candidates[0].Attribute, 1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SQL is exploitation mode 3: direct structured querying for sophisticated
// users. The statement is parsed first: a SELECT runs against a one-shot
// View (MVCC snapshot, zero lock acquisitions, no cache invalidation);
// anything else — mutations, DDL, or unparsable input — takes the writer
// path, where any mutating statement (the executor sets ResultSet.Mutated)
// or error, conservatively, invalidates the catalog cache. (Writes driven
// through s.DB directly are outside the cache contract: all
// extracted-table writes must go through System.)
func (s *System) SQL(ctx context.Context, query string) (*rdbms.ResultSet, error) {
	if stmt, err := rdbms.ParseSQL(query); err == nil {
		if _, ok := stmt.(rdbms.SelectStmt); ok {
			v, verr := s.View(ctx)
			if verr != nil {
				return nil, verr
			}
			defer v.Close()
			return v.SQL(query)
		}
	}
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	s.Stats.Inc("core.queries.sql", 1)
	rs, err := s.DB.ExecCtx(ctx, query)
	if err != nil || rs.Mutated {
		s.mu.Lock()
		s.cat.invalidate()
		s.dropCatSnapLocked()
		s.mu.Unlock()
	}
	return rs, err
}

// Browse is exploitation mode 4: a faceted browser over the extracted
// structure, built from a one-shot View's snapshot scan (ctx honored at
// scan-loop granularity).
func (s *System) Browse(ctx context.Context) (*browse.Browser, error) {
	v, err := s.View(ctx)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.Browse()
}

// Subscribe is exploitation mode 5: standing queries (alerts) over future
// extractions.
func (s *System) Subscribe(sub alert.Subscription) (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	defer s.endOp()
	return s.Alerts.Subscribe(sub)
}

// SweepSuspicious runs the semantic debugger over the materialized
// structure and returns flagged values (the 135-degree check). The
// debugger first (re)learns per-attribute constraints from the stored
// data itself — its trimmed-support fence tolerates a corrupt minority —
// so the sweep works regardless of which generation path (declarative or
// incremental) produced the rows.
func (s *System) SweepSuspicious(ctx context.Context) ([]debugger.Violation, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	defer s.endOp()
	var triples [][3]string
	tx := s.DB.Begin().WithContext(ctx)
	err := tx.Scan(TableName, func(_ rdbms.RID, t rdbms.Tuple) bool {
		triples = append(triples, [3]string{t[0].S, t[1].S, t[3].S})
		return true
	})
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	for _, tr := range triples {
		s.Debugger.Observe(tr[1], tr[2])
	}
	return s.Debugger.Sweep(triples), nil
}

// correctValueRetries bounds the deadlock retry loop in CorrectValue.
// Under strict 2PL a correction's scan takes a shared table lock and the
// update upgrades it to exclusive; two concurrent corrections therefore
// form a classic upgrade cycle and the lock manager aborts one with
// ErrDeadlock. The victim's work is trivially replayable (the whole
// operation is one scan + one update), so we retry a bounded number of
// times with a short backoff instead of surfacing the abort to the user.
const correctValueRetries = 16

// CorrectValue applies a human correction to the extracted structure: the
// row's value is replaced and its confidence set from the corrector's
// reputation. The contributor is rewarded via the incentive manager, and
// the corrected row is re-evaluated against alert subscriptions (a
// correction is new information arriving, exactly what a standing query
// watches for). Deadlocks against concurrent corrections are retried.
func (s *System) CorrectValue(ctx context.Context, user, entity, attribute, qualifier, newValue string) error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	weight := s.Users.Weight(user)
	var lastErr error
	for attempt := 0; attempt < correctValueRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			// Brief jittered-by-attempt backoff so the colliding correction
			// can finish its upgrade before we retake the shared lock.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * time.Millisecond):
			}
		}
		retry, err := s.correctValueOnce(ctx, weight, entity, attribute, qualifier, newValue)
		if err == nil {
			s.mu.Lock()
			s.cat.addRow(entity, attribute, qualifier)
			s.mu.Unlock()
			s.Users.Award(user, 5)
			s.Stats.Inc("core.corrections", 1)
			// Evaluate standing queries against the corrected row. The alert
			// center dedups on (subscription, entity, qualifier, value), so a
			// retried or repeated identical correction notifies once.
			fired := s.Alerts.Evaluate([]alert.Row{{
				Entity: entity, Attribute: attribute, Qualifier: qualifier,
				Value: newValue, Conf: weight,
			}})
			if len(fired) > 0 {
				s.Stats.Inc("core.alerts.fired", int64(len(fired)))
			}
			return nil
		}
		if !retry {
			return err
		}
		lastErr = err
		s.Stats.Inc("core.corrections.deadlock_retries", 1)
	}
	return fmt.Errorf("core: correction kept deadlocking after %d attempts: %w", correctValueRetries, lastErr)
}

// correctValueOnce runs one scan-and-update attempt. It reports retry=true
// only for deadlock aborts (the one transient failure worth replaying).
func (s *System) correctValueOnce(ctx context.Context, weight float64, entity, attribute, qualifier, newValue string) (retry bool, err error) {
	tx := s.DB.Begin().WithContext(ctx)
	var target *rdbms.RID
	var old rdbms.Tuple
	err = tx.Scan(TableName, func(rid rdbms.RID, t rdbms.Tuple) bool {
		if t[0].S == entity && t[1].S == attribute && t[2].S == qualifier {
			r := rid
			target = &r
			old = t.Clone()
			return false
		}
		return true
	})
	if err != nil {
		tx.Abort()
		return errors.Is(err, rdbms.ErrDeadlock), err
	}
	if target == nil {
		tx.Abort()
		return false, fmt.Errorf("core: no extracted row for %s.%s[%s]", entity, attribute, qualifier)
	}
	newTuple := old.Clone()
	newTuple[3] = rdbms.NewString(newValue)
	newTuple[4] = uql.NumValue(newValue)
	newTuple[5] = rdbms.NewFloat(weight)
	if _, err := tx.Update(TableName, *target, newTuple); err != nil {
		tx.Abort()
		return errors.Is(err, rdbms.ErrDeadlock), err
	}
	if err := tx.Commit(); err != nil {
		return errors.Is(err, rdbms.ErrDeadlock), err
	}
	return false, nil
}

// AverageFromRows is a helper for examples/benches: parse-and-average a
// single-column result set of numeric strings or floats.
func AverageFromRows(rs *rdbms.ResultSet) (float64, bool) {
	if rs == nil || len(rs.Rows) == 0 {
		return 0, false
	}
	sum, n := 0.0, 0
	for _, r := range rs.Rows {
		if len(r) == 0 {
			continue
		}
		switch r[0].Type {
		case rdbms.TFloat:
			sum += r[0].F
			n++
		case rdbms.TInt:
			sum += float64(r[0].I)
			n++
		case rdbms.TString:
			if f, err := strconv.ParseFloat(r[0].S, 64); err == nil {
				sum += f
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
