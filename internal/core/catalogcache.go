package core

import (
	"sort"

	"repro/internal/rdbms"
	"repro/internal/reformulate"
)

// catalogCache incrementally maintains the reformulation catalog — the
// distinct entities, attributes, and per-attribute qualifier vocabulary of
// the extracted table — so the keyword→structured hot path (AskGuided)
// runs zero table scans. All fields are guarded by System.mu.
//
// Lifecycle contract:
//   - Write paths that go through core (materialize, CorrectValue) update
//     the cache in place, after their transaction commits, under System.mu.
//   - Write paths that bypass core's row bookkeeping (UQL STORE inside
//     Generate, direct System.SQL writes) invalidate the cache; the next
//     Catalog() call rebuilds it with one full scan and reinstalls it.
//   - Rebuilds hold System.mu across the scan + install, so a concurrent
//     incremental update can neither be lost nor observed half-applied.
//     (Lock order is always System.mu → rdbms locks, never the reverse:
//     core write paths touch the cache only after Commit released their
//     rdbms locks.)
type catalogCache struct {
	valid     bool
	entities  map[string]bool
	attrs     map[string]bool
	qualSeen  map[string]map[string]bool
	qualOrder map[string][]string // first-seen qualifier order per attribute

	// epoch is the invalidation epoch: it advances on every content
	// change and every invalidation, versioning the cache for warm-start
	// persistence — a persisted snapshot is stale if the live cache has
	// moved past the epoch it was saved at.
	epoch int64

	// hash is an order-independent multiset hash over every extracted
	// row's (entity, attribute, qualifier): per-row FNV-1a digests summed
	// with wrapping addition, so insertion order is irrelevant but
	// multiplicity counts. It is the warm-start content validator — two
	// table states with equal row counts but different content (the
	// divergence row counts cannot see) hash differently. Maintained by
	// rebuilds and by materialize's per-row folds; CorrectValue rewrites
	// a row's value in place without touching its (entity, attribute,
	// qualifier), so it leaves the hash alone.
	hash uint64

	// built memoizes the assembled (sorted) catalog between writes; it is
	// cleared whenever the cache content changes. reform is the
	// reformulator derived from the catalog: instead of being rebuilt per
	// change (its construction tokenizes every entity name), it is
	// maintained incrementally — addRow feeds it just the delta — and is
	// dropped only on full invalidation.
	built  *reformulate.Catalog
	reform *reformulate.Reformulator
}

// markDirty discards the memoized catalog after a content change and
// advances the invalidation epoch; the entity/attribute/qualifier sets
// and the incrementally maintained reformulator stay valid.
func (c *catalogCache) markDirty() {
	c.built = nil
	c.epoch++
}

// invalidate discards the cache; the next snapshot triggers a full rescan.
func (c *catalogCache) invalidate() {
	c.valid = false
	c.entities = nil
	c.attrs = nil
	c.qualSeen = nil
	c.qualOrder = nil
	c.reform = nil
	c.hash = 0
	c.markDirty()
}

// rowContentHash digests one row's catalog-relevant identity. It is
// rdbms.ContentHashValues over the same three columns the database's
// incremental table hash covers (see System setup), so the cache-side
// hash and the engine-maintained one are directly comparable: warm-start
// validation can use whichever is cheapest.
func rowContentHash(entity, attribute, qualifier string) uint64 {
	return rdbms.ContentHashValues(
		rdbms.NewString(entity), rdbms.NewString(attribute), rdbms.NewString(qualifier))
}

// foldRowHash adds one materialized row into the content hash. No-op
// while invalid: the next rebuild recomputes the hash from the table.
func (c *catalogCache) foldRowHash(entity, attribute, qualifier string) {
	if !c.valid {
		return
	}
	c.hash += rowContentHash(entity, attribute, qualifier)
}

// reset prepares empty-but-valid state for a rebuild.
func (c *catalogCache) reset() {
	c.valid = true
	c.entities = map[string]bool{}
	c.attrs = map[string]bool{}
	c.qualSeen = map[string]map[string]bool{}
	c.qualOrder = map[string][]string{}
	c.reform = nil
	c.hash = 0
	c.markDirty()
}

// addRow folds one extracted row's (entity, attribute, qualifier) into the
// cache — and, when a reformulator is live, into its token index (the
// per-delta maintenance that replaces whole-index rebuilds). Idempotent,
// so replaying a row already seen by a rebuild is safe. No-op while the
// cache is invalid (a later rebuild will pick the row up).
func (c *catalogCache) addRow(entity, attribute, qualifier string) {
	if !c.valid {
		return
	}
	if !c.entities[entity] {
		c.entities[entity] = true
		if c.reform != nil {
			c.reform.AddEntity(entity)
		}
		c.markDirty()
	}
	if !c.attrs[attribute] {
		c.attrs[attribute] = true
		if c.reform != nil {
			c.reform.AddAttribute(attribute)
		}
		c.markDirty()
	}
	if qualifier != "" {
		if c.qualSeen[attribute] == nil {
			c.qualSeen[attribute] = map[string]bool{}
		}
		if !c.qualSeen[attribute][qualifier] {
			c.qualSeen[attribute][qualifier] = true
			c.qualOrder[attribute] = append(c.qualOrder[attribute], qualifier)
			if c.reform != nil {
				c.reform.AddQualifier(attribute, qualifier)
			}
			c.markDirty()
		}
	}
}

// installWarm replaces the cache content with a persisted warm snapshot,
// adopting its epoch and content hash. Qualifier vocabularies keep the
// persisted order.
func (c *catalogCache) installWarm(entities, attrs []string, quals map[string][]string, epoch int64, hash uint64) {
	c.reset()
	for _, e := range entities {
		c.entities[e] = true
	}
	for _, a := range attrs {
		c.attrs[a] = true
	}
	for a, vocab := range quals {
		seen := map[string]bool{}
		order := make([]string, 0, len(vocab))
		for _, q := range vocab {
			if !seen[q] {
				seen[q] = true
				order = append(order, q)
			}
		}
		c.qualSeen[a] = seen
		c.qualOrder[a] = order
	}
	c.epoch = epoch
	c.hash = hash
}

// snapshot assembles the reformulate.Catalog from the cache. The result
// shares slices with the memoized copy; callers must treat it as
// read-only (reformulate does).
func (c *catalogCache) snapshot(table string) reformulate.Catalog {
	if c.built != nil {
		return *c.built
	}
	cat := reformulate.Catalog{Table: table, Qualifiers: map[string][]string{}}
	cat.Entities = make([]string, 0, len(c.entities))
	for e := range c.entities {
		cat.Entities = append(cat.Entities, e)
	}
	sort.Strings(cat.Entities)
	cat.Attributes = make([]string, 0, len(c.attrs))
	for a := range c.attrs {
		cat.Attributes = append(cat.Attributes, a)
	}
	sort.Strings(cat.Attributes)
	// Qualifier vocabulary keeps first-seen (document) order, which for
	// month-qualified attributes is calendar order.
	for a, quals := range c.qualOrder {
		cat.Qualifiers[a] = quals
	}
	c.built = &cat
	return cat
}

// reformulator returns the memoized reformulator over the cached catalog,
// building it on first use after a change. Reformulators are read-only
// after construction, so sharing one across queries is safe.
func (c *catalogCache) reformulator(table string) *reformulate.Reformulator {
	if c.reform == nil {
		c.reform = reformulate.New(c.snapshot(table))
	}
	return c.reform
}

// rebuildFrom repopulates the cache with one full scan of the extracted
// table. The scan runs through an MVCC snapshot: it sees exactly the
// committed state at one LSN, takes zero lock-manager acquisitions, and
// cannot deadlock against concurrent writers — important because the
// caller holds System.mu for the duration. Caller holds System.mu.
func (c *catalogCache) rebuildFrom(db *rdbms.DB, table string) error {
	c.reset()
	sn := db.BeginSnapshot()
	defer sn.Close()
	err := sn.Scan(table, func(_ rdbms.RID, t rdbms.Tuple) bool {
		c.addRow(t[0].S, t[1].S, t[2].S)
		c.hash += rowContentHash(t[0].S, t[1].S, t[2].S)
		return true
	})
	if err != nil {
		c.invalidate()
		return err
	}
	return nil
}
