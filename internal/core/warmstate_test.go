package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/synth"
	"repro/internal/uql"
)

const warmGenProgram = `
	EXTRACT temperature FROM docs USING city KIND city INTO temps;
	STORE temps INTO TABLE extracted;
`

func TestWarmStartRestoresCatalogAndQueue(t *testing.T) {
	dir := t.TempDir() + "/warm"
	corpus, _ := synth.Generate(synth.Config{
		Seed: 11, Cities: 12, People: 4, Filler: 10, MentionsPerPerson: 2,
	})

	// "Process A": generate, plan incremental work, extract part of it,
	// warm the cache, save.
	a, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := a.PlanIncremental(context.Background(), "city", []string{"population", "founded"}, 4); err != nil {
		t.Fatal(err)
	}
	a.Demand(context.Background(), "founded", 2) // non-trivial priorities must survive the restart
	if _, err := a.ExtractPending(context.Background(), "city", 3); err != nil {
		t.Fatal(err)
	}
	warmCat, err := a.Catalog(context.Background()) // warms the cache
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}
	wantPending := a.PendingTasks()
	wantByAttr := a.PendingByAttribute()
	wantCovPop := a.Coverage("population")

	// "Process B": replays the same deterministic generation and the same
	// extraction batch (so the table matches), then restores the warm
	// catalog and the remaining queue from the snapshot.
	b, warm, err := Open(Config{Corpus: corpus}, dir, func(s *System) error {
		if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
			return err
		}
		if err := s.PlanIncremental(context.Background(), "city", []string{"population", "founded"}, 4); err != nil {
			return err
		}
		s.Demand(context.Background(), "founded", 2)
		_, err := s.ExtractPending(context.Background(), "city", 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("warm state refused despite identical table state")
	}

	// The restored catalog must equal both the saved one and a fresh
	// full-scan rebuild of B's table.
	gotCat, err := b.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCat, warmCat) {
		t.Fatalf("restored catalog differs from saved:\ngot  %+v\nwant %+v", gotCat, warmCat)
	}
	assertCatalogFresh(t, b, "after warm load")

	// Queue warm state: same pending count, same per-attribute breakdown,
	// same coverage accounting.
	if got := b.PendingTasks(); got != wantPending {
		t.Fatalf("pending tasks: %d, want %d", got, wantPending)
	}
	if got := b.PendingByAttribute(); !reflect.DeepEqual(got, wantByAttr) {
		t.Fatalf("pending by attribute: %v, want %v", got, wantByAttr)
	}
	if got := b.Coverage("population"); got != wantCovPop {
		t.Fatalf("coverage: %v, want %v", got, wantCovPop)
	}

	// The restored queue must actually run: draining it extracts the same
	// attributes A would have extracted, in the same priority order.
	if _, err := b.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	if b.PendingTasks() != 0 {
		t.Fatal("restored queue did not drain")
	}
	assertCatalogFresh(t, b, "after draining restored queue")

	// Guided queries serve from the restored warm cache.
	ans, err := b.AskGuided(context.Background(), "average temperature Madison Wisconsin", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Answer == nil || len(ans.Answer.Rows) == 0 {
		t.Fatal("no guided answer from warm-started system")
	}
}

// TestWarmStartEqualsColdRebuild: the warm-restored catalog must be
// byte-identical to what a cold rebuild computes — the correctness bar
// for skipping the rebuild scan.
func TestWarmStartEqualsColdRebuild(t *testing.T) {
	dir := t.TempDir() + "/warm"
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: 10, People: 3, Filler: 5, MentionsPerPerson: 2,
	})
	a, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}

	b, warm, err := Open(Config{Corpus: corpus}, dir, func(s *System) error {
		_, err := s.Generate(context.Background(), warmGenProgram, uql.Options{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("warm state refused")
	}
	warmed, err := b.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := b.RefreshCatalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmed, cold) {
		t.Fatalf("warm catalog != cold rebuild\nwarm: %+v\ncold: %+v", warmed, cold)
	}
}

// TestWarmStartStaleRowCount: a snapshot saved before extra rows landed
// must be refused (row-count validation), leaving the system cold but
// correct.
func TestWarmStartStaleRowCount(t *testing.T) {
	dir := t.TempDir() + "/warm"
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: 10, People: 3, Filler: 5, MentionsPerPerson: 2,
	})
	a, err := New(Config{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}

	// "Process B" materializes one extra row before loading.
	b, warm, err := Open(Config{Corpus: corpus}, dir, func(s *System) error {
		if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
			return err
		}
		_, err := s.SQL(context.Background(), "INSERT INTO extracted (entity, attribute, qualifier, value, num, conf) VALUES ('Gotham', 'mayor', '', 'Bruce', NULL, 0.5)")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("stale snapshot (row count mismatch) was accepted")
	}
	// Cold path still answers correctly.
	assertCatalogFresh(t, b, "cold after stale refusal")
	cat, _ := b.Catalog(context.Background())
	found := false
	for _, e := range cat.Entities {
		if e == "Gotham" {
			found = true
		}
	}
	if !found {
		t.Fatal("cold rebuild missed the extra row")
	}
}

// TestWarmStartStaleEpoch: within one process, writing after a save makes
// the live epoch newer than the snapshot; loading it back must be refused
// even if the row count happens to match again.
func TestWarmStartStaleEpoch(t *testing.T) {
	dir := t.TempDir() + "/warm"
	s, _ := newSystem(t, 8, 2, 0)
	if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}
	// Delete one row and insert another: same row count, different table.
	cat, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Entities) == 0 {
		t.Fatal("no entities")
	}
	if _, err := s.SQL(context.Background(), "DELETE FROM extracted WHERE entity = '"+cat.Entities[0]+"' AND qualifier = 'March'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SQL(context.Background(), "INSERT INTO extracted (entity, attribute, qualifier, value, num, conf) VALUES ('Gotham', 'mayor', '', 'Bruce', NULL, 0.5)"); err != nil {
		t.Fatal(err)
	}
	warm, err := s.LoadWarmState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("snapshot older than the live epoch was accepted")
	}
	assertCatalogFresh(t, s, "cold after epoch refusal")
}

// TestWarmStartLatestSnapshotWins: repeated saves append records; the
// load must pick the newest epoch.
func TestWarmStartLatestSnapshotWins(t *testing.T) {
	dir := t.TempDir() + "/warm"
	s, _ := newSystem(t, 8, 2, 0)
	if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}
	// More data, then a second snapshot into the same dir.
	if err := s.PlanIncremental(context.Background(), "city", []string{"population"}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveWarmState(dir); err != nil {
		t.Fatal(err)
	}
	warm, err := s.LoadWarmState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("latest snapshot refused")
	}
	assertCatalogFresh(t, s, "after loading latest of two snapshots")
	cat, _ := s.Catalog(context.Background())
	has := false
	for _, a := range cat.Attributes {
		if a == "population" {
			has = true
		}
	}
	if !has {
		t.Fatal("restored the older snapshot (population missing)")
	}
}

// TestCatalogSnapshotImmuneToLaterDeltas: a Catalog() snapshot handed to
// a caller is read-only; later incremental writes (which now feed the
// memoized reformulator deltas in place) must not add keys to the
// snapshot's Qualifiers map (regression for a review finding).
func TestCatalogSnapshotImmuneToLaterDeltas(t *testing.T) {
	s, _ := newSystem(t, 8, 2, 0)
	if _, err := s.Generate(context.Background(), warmGenProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	// Warm the memoized reformulator so later addRow calls mutate it in
	// place, then hold a snapshot.
	if _, err := s.AskGuided(context.Background(), "average temperature Madison Wisconsin", 3); err != nil {
		t.Fatal(err)
	}
	held, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	heldAttrs := len(held.Qualifiers)

	// A new attribute with a qualifier lands through the cache-maintained
	// path (materialize, NOT System.SQL — that would invalidate the cache
	// and sidestep the in-place delta this test guards).
	s.Env.Relations["inject"] = []uql.Row{{
		Entity: "Gotham", Attribute: "rainfall", Qualifier: "March",
		Value: "12", Conf: 0.9,
	}}
	if err := s.MaterializeRelation(context.Background(), "inject"); err != nil {
		t.Fatal(err)
	}
	if len(held.Qualifiers) != heldAttrs {
		t.Fatalf("held snapshot's Qualifiers map grew from %d to %d attributes", heldAttrs, len(held.Qualifiers))
	}
	// The live catalog, in contrast, must see the delta.
	cur, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Qualifiers["rainfall"]; !ok {
		t.Fatal("live catalog missed the rainfall qualifier delta")
	}
	assertCatalogFresh(t, s, "after deltas behind a held snapshot")
}

// TestWarmStartMissingDirIsCold: no snapshot directory means a cold open,
// not an error.
func TestWarmStartMissingDirIsCold(t *testing.T) {
	s, _ := newSystem(t, 6, 2, 0)
	warm, err := s.LoadWarmState(t.TempDir() + "/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("warm load from a missing dir")
	}
}
