package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/uql"
)

// assertCatalogFresh checks that the cached Catalog() equals a fresh
// full-scan rebuild (CatalogScan), the cache-correctness invariant.
func assertCatalogFresh(t *testing.T, s *System, when string) {
	t.Helper()
	cached, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatalf("%s: Catalog: %v", when, err)
	}
	fresh, err := s.RefreshCatalog(context.Background())
	if err != nil {
		t.Fatalf("%s: CatalogScan: %v", when, err)
	}
	if !reflect.DeepEqual(cached, fresh) {
		t.Fatalf("%s: cached catalog diverged from full scan\ncached: %+v\nfresh:  %+v", when, cached, fresh)
	}
}

func TestCatalogCacheMatchesFullScan(t *testing.T) {
	s, _ := newSystem(t, 10, 4, 0)
	assertCatalogFresh(t, s, "empty table")

	// After Generate (UQL STORE writes bypass materialize and must
	// invalidate the cache).
	if _, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after Generate")

	// After incremental extraction (materialize maintains the cache in
	// place — no invalidation, so this exercises addRow).
	if err := s.PlanIncremental(context.Background(), "city", []string{"population", "founded"}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after ExtractPending")

	// After a human correction (in-place value rewrite).
	cat, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Entities) == 0 {
		t.Fatal("no entities extracted")
	}
	ent := cat.Entities[0]
	var qual string
	if quals := cat.Qualifiers["temperature"]; len(quals) > 0 {
		qual = quals[0]
	}
	if err := s.CorrectValue(context.Background(), "alice", ent, "temperature", qual, "12.5"); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after CorrectValue")

	// After direct SQL writes through the System facade.
	if _, err := s.SQL(context.Background(), "INSERT INTO extracted (entity, attribute, qualifier, value, num, conf) VALUES ('Metropolis', 'mayor', '', 'Jane Doe', NULL, 0.9)"); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after SQL INSERT")
	cached, _ := s.Catalog(context.Background())
	found := false
	for _, e := range cached.Entities {
		if e == "Metropolis" {
			found = true
		}
	}
	if !found {
		t.Fatal("SQL INSERT did not surface in the catalog")
	}

	if _, err := s.SQL(context.Background(), "DELETE FROM extracted WHERE entity = 'Metropolis'"); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after SQL DELETE")
	cached, _ = s.Catalog(context.Background())
	for _, e := range cached.Entities {
		if e == "Metropolis" {
			t.Fatal("deleted entity still in catalog")
		}
	}
}

func TestCatalogCacheReusesMemoizedSnapshot(t *testing.T) {
	s, _ := newSystem(t, 6, 2, 0)
	if _, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	a, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Read-only streak: the memoized snapshot (and its slices) is reused.
	if len(a.Entities) > 0 && &a.Entities[0] != &b.Entities[0] {
		t.Fatal("catalog snapshot rebuilt despite no writes")
	}
}

// TestCatalogCacheSurvivesRefreshChanged: RefreshChanged deletes an
// entity's rows before re-extracting; the warm cache cannot un-see rows,
// so the refresh must invalidate it (regression for a review finding).
func TestCatalogCacheSurvivesRefreshChanged(t *testing.T) {
	s, _ := newSystem(t, 8, 0, 0)
	if err := s.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExtractPending(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "warm before refresh") // warms the cache
	// Day-2 crawl: Madison's article becomes unextractable prose, so the
	// refresh deletes its rows and materializes nothing for it.
	s.CommitSnapshot(map[string]string{"Madison, Wisconsin": "Nothing structured remains here."})
	changed, err := s.RefreshChanged("city")
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed: %v", changed)
	}
	assertCatalogFresh(t, s, "after RefreshChanged")
	cat, _ := s.Catalog(context.Background())
	for _, e := range cat.Entities {
		if e == "Madison, Wisconsin" {
			t.Fatal("deleted entity still served from warm catalog cache")
		}
	}
}

// TestCatalogCacheInvalidatedOnGenerateError: UQL ops run sequentially
// and each STORE commits its own transaction, so a program that stores
// then errors must still invalidate the cache (regression for a review
// finding).
func TestCatalogCacheInvalidatedOnGenerateError(t *testing.T) {
	s, _ := newSystem(t, 6, 0, 0)
	assertCatalogFresh(t, s, "warm on empty table") // warms the cache
	_, err := s.Generate(context.Background(), `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
		STORE no_such_relation INTO TABLE extracted;
	`, uql.Options{})
	if err == nil {
		t.Fatal("expected error from STORE of unknown relation")
	}
	// The first STORE committed rows; the cached catalog must see them.
	assertCatalogFresh(t, s, "after failed Generate")
	cat, _ := s.Catalog(context.Background())
	if len(cat.Entities) == 0 {
		t.Fatal("committed STORE rows invisible to catalog after failed Generate")
	}
}

// TestCatalogCacheConcurrentQueryAndExtract races AskGuided against
// ExtractPending and CorrectValue; run with -race. The invariant at the
// end: cache still matches a full scan.
func TestCatalogCacheConcurrentQueryAndExtract(t *testing.T) {
	s, _ := newSystem(t, 10, 4, 0)
	if err := s.PlanIncremental(context.Background(), "city", []string{"temperature", "population"}, 8); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := s.ExtractPending(context.Background(), "city", 2); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.AskGuided(context.Background(), "average temperature Madison Wisconsin", 3); err != nil {
					errs <- fmt.Errorf("AskGuided: %w", err)
					return
				}
				s.Demand(context.Background(), "population", 0.5)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	assertCatalogFresh(t, s, "after concurrent query+extract")
}
