package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/alert"
)

// The alert center is the delivery edge of the correction pipeline:
// every successful CorrectValue evaluates the corrected row against the
// standing queries. Under concurrent corrections (which deadlock-retry
// inside CorrectValue) the contract is exactly-once per correction
// identity — no lost notification when a retry wins, no duplicate when a
// retried attempt re-evaluates.

func TestAlertExactlyOnceUnderConcurrentCorrections(t *testing.T) {
	s := newCloseTestSystem(t)
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Subscribe(alert.Subscription{
		User: "watcher", Attribute: "temperature", Op: alert.OpGT, Threshold: -1000,
	}); err != nil {
		t.Fatal(err)
	}

	// Collect distinct correction identities from the extracted structure.
	rs, err := s.SQL(ctx, "SELECT entity, qualifier FROM extracted WHERE attribute = 'temperature'")
	if err != nil {
		t.Fatal(err)
	}
	type ident struct{ entity, qualifier string }
	var idents []ident
	for _, r := range rs.Rows {
		idents = append(idents, ident{r[0].S, r[1].S})
		if len(idents) == 12 {
			break
		}
	}
	if len(idents) < 4 {
		t.Fatalf("not enough extracted temperature rows to race: %d", len(idents))
	}

	correct := func(wg *sync.WaitGroup, errs chan<- error) {
		for i := range idents {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				val := fmt.Sprintf("%d", 2000+i)
				if err := s.CorrectValue(ctx, "fixer", idents[i].entity,
					"temperature", idents[i].qualifier, val); err != nil {
					errs <- fmt.Errorf("correct %v: %w", idents[i], err)
				}
			}(i)
		}
	}

	// Round 1: all corrections race. Every one must succeed (the deadlock
	// retry absorbs the 2PL upgrade cycles) and fire exactly one alert.
	var wg sync.WaitGroup
	errs := make(chan error, len(idents))
	correct(&wg, errs)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hist := s.Alerts.History()
	if len(hist) != len(idents) {
		t.Fatalf("round 1: %d notifications for %d corrections", len(hist), len(idents))
	}
	seen := map[string]bool{}
	for _, n := range hist {
		key := n.Row.Entity + "|" + n.Row.Qualifier + "|" + n.Row.Value
		if seen[key] {
			t.Errorf("duplicate notification for %s", key)
		}
		seen[key] = true
	}
	for i, id := range idents {
		key := fmt.Sprintf("%s|%s|%d", id.entity, id.qualifier, 2000+i)
		if !seen[key] {
			t.Errorf("lost notification for correction %s", key)
		}
	}

	// Round 2: identical corrections race again. The values are unchanged,
	// so duplicate suppression must keep the ledger exactly as it was.
	errs2 := make(chan error, len(idents))
	correct(&wg, errs2)
	wg.Wait()
	close(errs2)
	for err := range errs2 {
		t.Error(err)
	}
	if again := s.Alerts.History(); len(again) != len(hist) {
		t.Fatalf("re-correcting to the same values grew the ledger: %d -> %d",
			len(hist), len(again))
	}
}
