package core

import (
	"fmt"

	"repro/internal/alert"
	"repro/internal/search"
	"repro/internal/uql"
	"repro/internal/vstore"
)

// Snapshot support: the paper's storage layer keeps daily crawls of the
// unstructured sources in a Subversion-like store. CommitSnapshot records
// a crawl; RefreshChanged re-extracts only the documents whose text
// changed since the last refresh, updates the final structure, and lets
// standing alerts fire on the new values — the full
// crawl -> diff-store -> re-extract -> alert loop.

// Snapshots returns the versioned store, initializing it with the current
// corpus on first use.
func (s *System) Snapshots() *vstore.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapshots == nil {
		s.snapshots = vstore.NewStore()
		texts := make(map[string]string, s.Corpus.Len())
		for _, d := range s.Corpus.Docs() {
			texts[d.Title] = d.Text
		}
		s.snapshots.Commit(texts)
	}
	return s.snapshots
}

// CommitSnapshot records a new crawl (texts keyed by document title) in
// the versioned store and returns its revision. Document content is not
// applied to the live corpus until RefreshChanged.
func (s *System) CommitSnapshot(texts map[string]string) vstore.Revision {
	store := s.Snapshots()
	rev := store.Commit(texts)
	s.Stats.Inc("core.snapshots.committed", 1)
	return rev
}

// RefreshChanged applies the head snapshot to the corpus: documents whose
// text changed are re-extracted with the named extractor (all of its
// scoped attributes), their old rows replaced, and alerts evaluated on
// the new rows. It returns the titles of the refreshed documents.
func (s *System) RefreshChanged(extractor string) ([]string, error) {
	reg, ok := s.Env.Extractors[extractor]
	if !ok {
		return nil, fmt.Errorf("core: unknown extractor %q", extractor)
	}
	store := s.Snapshots()
	var changed []string
	for _, d := range s.Corpus.Docs() {
		head, ok := store.CheckoutHead(d.Title)
		if !ok || head == d.Text {
			continue
		}
		d.Text = head
		changed = append(changed, d.Title)

		// Replace this entity's extracted rows. The DELETE removes rows the
		// incremental catalog cache cannot un-see (addRow only adds), so
		// invalidate it; the following materialize is a no-op on an invalid
		// cache and the next Catalog() rescans.
		if _, err := s.DB.Exec(fmt.Sprintf(
			"DELETE FROM %s WHERE entity = '%s'", TableName, sqlEscape(d.Title))); err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.cat.invalidate()
		s.mu.Unlock()
		var rows []uql.Row
		for _, f := range reg.Pipeline.ExtractDoc(d) {
			s.Debugger.Observe(f.Attribute, f.Value)
			rows = append(rows, uql.Row{
				Entity: f.Entity, Attribute: f.Attribute,
				Qualifier: f.Qualifier, Value: f.Value, Conf: f.Conf,
			})
		}
		if err := s.materialize(rows); err != nil {
			return nil, err
		}
	}
	if len(changed) > 0 {
		// The inverted index has no in-place update; rebuild it so keyword
		// search reflects the refreshed text.
		s.Index = search.BuildIndex(s.Corpus)
		s.Stats.Inc("core.snapshots.refreshed_docs", int64(len(changed)))
	}
	return changed, nil
}

func sqlEscape(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, v[i])
	}
	return string(out)
}

// AlertRowsFor is a testing/diagnostic helper converting stored rows of an
// entity into alert rows.
func (s *System) AlertRowsFor(entity string) ([]alert.Row, error) {
	rs, err := s.DB.Exec(fmt.Sprintf(
		"SELECT entity, attribute, qualifier, value, conf FROM %s WHERE entity = '%s'",
		TableName, sqlEscape(entity)))
	if err != nil {
		return nil, err
	}
	out := make([]alert.Row, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		out = append(out, alert.Row{
			Entity: r[0].S, Attribute: r[1].S, Qualifier: r[2].S,
			Value: r[3].S, Conf: r[4].F,
		})
	}
	return out, nil
}
