package core

import "testing"

func TestTaskQueueOrdering(t *testing.T) {
	var q taskQueue
	// Three attributes, two parts each, all priority 0.
	for _, attr := range []string{"a", "b", "c"} {
		for p := 0; p < 2; p++ {
			q.push(task{attribute: attr, part: p})
		}
	}
	if q.len() != 6 {
		t.Fatalf("len = %d", q.len())
	}
	// Boost b: its tasks drain first, FIFO among themselves; the rest keep
	// insertion order (the stable-sort contract of the old implementation).
	q.boost("b", 5)
	want := []struct {
		attr string
		part int
	}{
		{"b", 0}, {"b", 1},
		{"a", 0}, {"a", 1}, {"c", 0}, {"c", 1},
	}
	for i, w := range want {
		tk, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if tk.attribute != w.attr || tk.part != w.part {
			t.Fatalf("pop %d = %s/%d, want %s/%d", i, tk.attribute, tk.part, w.attr, w.part)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestTaskQueueBoostAfterPartialDrain(t *testing.T) {
	var q taskQueue
	for i := 0; i < 4; i++ {
		q.push(task{attribute: "x", part: i})
	}
	q.push(task{attribute: "y", part: 0})
	// Drain two x tasks, then boost y: the per-attribute index must have
	// dropped the popped items.
	q.pop()
	q.pop()
	q.boost("y", 10)
	tk, _ := q.pop()
	if tk.attribute != "y" {
		t.Fatalf("after boost, popped %s", tk.attribute)
	}
	// Remaining x tasks keep FIFO order.
	tk, _ = q.pop()
	if tk.attribute != "x" || tk.part != 2 {
		t.Fatalf("popped %s/%d, want x/2", tk.attribute, tk.part)
	}
	tk, _ = q.pop()
	if tk.attribute != "x" || tk.part != 3 {
		t.Fatalf("popped %s/%d, want x/3", tk.attribute, tk.part)
	}
	if q.len() != 0 {
		t.Fatalf("len = %d", q.len())
	}
	// Boosting a fully drained attribute is a no-op, not a panic.
	q.boost("x", 1)
}

func TestTaskQueueCumulativeBoosts(t *testing.T) {
	var q taskQueue
	q.push(task{attribute: "a"})
	q.push(task{attribute: "b"})
	q.push(task{attribute: "c"})
	q.boost("c", 1)
	q.boost("b", 1)
	q.boost("b", 1) // b overtakes c cumulatively
	order := []string{}
	for {
		tk, ok := q.pop()
		if !ok {
			break
		}
		order = append(order, tk.attribute)
	}
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
}
