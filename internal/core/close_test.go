package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/uql"
)

// newCloseTestSystem builds a small in-memory system with a few extracted
// rows so exploitation calls have something to chew on.
func newCloseTestSystem(t *testing.T) *System {
	t.Helper()
	s, _ := newSystem(t, 4, 2, 0)
	prog := `
		EXTRACT temperature FROM docs USING city KIND city INTO temps;
		STORE temps INTO TABLE extracted;
	`
	if _, err := s.Generate(context.Background(), prog, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCloseIdempotent: Close twice sequentially returns the same result
// and does not fail or double-release anything.
func TestCloseIdempotent(t *testing.T) {
	s := newCloseTestSystem(t)
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestCloseConcurrent: many goroutines race Close; exactly one performs
// the teardown and all observe the same (nil) result without panics.
func TestCloseConcurrent(t *testing.T) {
	s := newCloseTestSystem(t)
	const n = 16
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("closer %d: %v", i, err)
		}
	}
}

// TestOpsAfterCloseGetErrClosed: every serving operation refused after
// Close reports the typed ErrClosed, not a storage-layer error.
func TestOpsAfterCloseGetErrClosed(t *testing.T) {
	s := newCloseTestSystem(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.KeywordSearch(ctx, "temperature", 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("KeywordSearch: got %v, want ErrClosed", err)
	}
	if _, err := s.AskGuided(ctx, "temperature Helsinki", 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("AskGuided: got %v, want ErrClosed", err)
	}
	if _, err := s.SQL(ctx, "SELECT COUNT(*) FROM extracted"); !errors.Is(err, ErrClosed) {
		t.Fatalf("SQL: got %v, want ErrClosed", err)
	}
	if _, err := s.Browse(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Browse: got %v, want ErrClosed", err)
	}
	if err := s.CorrectValue(ctx, "u", "Helsinki", "temperature", "", "7"); !errors.Is(err, ErrClosed) {
		t.Fatalf("CorrectValue: got %v, want ErrClosed", err)
	}
	if _, err := s.ExplainFact(ctx, "Helsinki", "temperature", ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("ExplainFact: got %v, want ErrClosed", err)
	}
	if _, err := s.Generate(context.Background(), "EXTRACT temperature FROM docs USING city", uql.Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Generate: got %v, want ErrClosed", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint: got %v, want ErrClosed", err)
	}
	if _, err := s.ExtractedRows(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ExtractedRows: got %v, want ErrClosed", err)
	}
}

// TestCloseDrainsInFlight: a Close issued while operations are running
// waits for them to finish rather than tearing down underneath them, and
// operations arriving after Close began are refused.
func TestCloseDrainsInFlight(t *testing.T) {
	s := newCloseTestSystem(t)

	started := make(chan struct{})
	release := make(chan struct{})
	opDone := make(chan error, 1)
	go func() {
		opDone <- func() error {
			if err := s.beginOp(); err != nil {
				return err
			}
			defer s.endOp()
			close(started)
			<-release // hold the op in flight while Close runs
			return nil
		}()
	}()
	<-started

	closeDone := make(chan error, 1)
	go func() { closeDone <- s.Close() }()

	// Close must be blocked on the drain: give it a moment, then confirm
	// new work is already refused (closing flipped) but Close has not
	// returned.
	deadline := time.After(2 * time.Second)
	for !s.Closing() {
		select {
		case <-deadline:
			t.Fatal("Close never flipped closing")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := s.KeywordSearch(context.Background(), "x", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("op during drain: got %v, want ErrClosed", err)
	}
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while an op was still in flight", err)
	default:
	}

	close(release)
	if err := <-opDone; err != nil {
		t.Fatalf("in-flight op: %v", err)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the drain emptied")
	}
	if got := s.InFlightOps(); got != 0 {
		t.Fatalf("in-flight after close: %d", got)
	}
}
