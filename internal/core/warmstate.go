package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/doc"
	"repro/internal/filestore"
)

// Warm-start persistence. The PR1 catalog cache and task queue die with
// the process: every reopened system pays a cold full scan on its first
// Catalog()/AskGuided and has to replan incremental extraction. This file
// persists that warm state through the filestore layer (the paper's
// append-only segment store for intermediate structured data): each
// SaveWarmState appends one checksummed snapshot record tagged with the
// cache's invalidation epoch, and LoadWarmState restores the newest
// snapshot that still matches the live database — so Open serves warm
// with zero table scans.
//
// Staleness is decided by two checks, both cheap:
//   - Row-count validation: the snapshot records the extracted table's
//     row count at save time (read O(1) from the entity index); a
//     snapshot whose count disagrees with the live table describes a
//     different table state and is refused.
//   - Invalidation-epoch validation: every cache change or invalidation
//     advances the epoch, and a snapshot older than the live cache's
//     epoch is refused — a save followed by any write cannot be loaded
//     back over the newer state.
//
// A refused snapshot is not an error: the load reports cold and the next
// Catalog() rebuilds by scan, exactly the pre-warm-start behavior.

// warmTask is one serialized pending extraction task. Documents persist
// by title and re-resolve against the corpus at load.
type warmTask struct {
	Attribute string   `json:"attribute"`
	Priority  float64  `json:"priority"`
	Part      int      `json:"part"`
	Docs      []string `json:"docs"`
}

// warmState is one persisted snapshot record.
type warmState struct {
	Epoch int64 `json:"epoch"`
	Rows  int   `json:"rows"`
	// Checksum is the order-independent content hash over every row's
	// (entity, attribute, qualifier) at save time. Row count catches
	// different-size divergence; the checksum catches same-count
	// divergence — a snapshot from a table with the same number of rows
	// but different content is refused.
	Checksum   uint64              `json:"checksum"`
	Entities   []string            `json:"entities"`
	Attributes []string            `json:"attributes"`
	Qualifiers map[string][]string `json:"qualifiers"`
	Queue      []warmTask          `json:"queue"`
	Done       map[string]int      `json:"done"`
	Total      map[string]int      `json:"total"`
}

// warmSegCap sizes the filestore segments backing warm snapshots: they
// are small JSON records, and a tight segment keeps Open from allocating
// the 1 MiB default per load.
const warmSegCap = 64 << 10

// extractedRowCount reads the extracted table's row count from the entity
// index in O(1) — every row carries an entity, so index entries == rows.
func (s *System) extractedRowCount() (int, error) {
	t := s.DB.Table(TableName)
	if t == nil {
		return 0, fmt.Errorf("core: table %s does not exist", TableName)
	}
	idx := t.Indexes["entity"]
	if idx == nil {
		return 0, fmt.Errorf("core: no entity index on %s", TableName)
	}
	return idx.Len(), nil
}

// SaveWarmState appends a snapshot of the catalog cache and the pending
// task queue to the filestore under dir. An invalid cache is rebuilt
// (one scan) first, so the snapshot always describes the live table.
func (s *System) SaveWarmState(dir string) error {
	s.mu.Lock()
	if err := s.ensureCatalogLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	cat := s.cat.snapshot(TableName)
	// The checksum is the cache's own digest, so it always describes the
	// Entities/Attributes being persisted. The load side compares it
	// against the engine-maintained table digest — the two are defined
	// over the same columns by the same function, and a freshly rebuilt
	// cache's hash equals the table's, so a valid snapshot verifies in
	// O(1) while any divergence (cache and table drifting apart between
	// snapshot and save) is refused rather than papered over.
	st := warmState{
		Epoch:      s.cat.epoch,
		Checksum:   s.cat.hash,
		Entities:   cat.Entities,
		Attributes: cat.Attributes,
		Qualifiers: cat.Qualifiers,
		Done:       map[string]int{},
		Total:      map[string]int{},
	}
	for a, n := range s.done {
		st.Done[a] = n
	}
	for a, n := range s.total {
		st.Total[a] = n
	}
	for _, tk := range s.queue.snapshot() {
		wt := warmTask{Attribute: tk.attribute, Priority: tk.priority, Part: tk.part}
		for _, d := range tk.docs {
			wt.Docs = append(wt.Docs, d.Title)
		}
		st.Queue = append(st.Queue, wt)
	}
	// Row count is read under s.mu too (lock order System.mu → rdbms, the
	// same order rebuilds use), so the snapshot can't interleave with a
	// concurrent materialize.
	rows, err := s.extractedRowCount()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	st.Rows = rows
	s.mu.Unlock()

	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	store, err := openOrCreateStore(dir)
	if err != nil {
		return err
	}
	if _, err := store.Append(payload); err != nil {
		return err
	}
	if err := store.Persist(dir); err != nil {
		return err
	}
	s.Stats.Inc("core.warmstate.saved", 1)
	return nil
}

func openOrCreateStore(dir string) (*filestore.Store, error) {
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return filestore.New(warmSegCap), nil
		}
		return nil, err
	}
	return filestore.Open(dir, warmSegCap)
}

// LoadWarmState restores the newest valid snapshot from dir, replacing
// the catalog cache and queue state. It returns warm=false (with no
// error) when no snapshot passes the staleness checks — the system then
// stays cold and rebuilds by scan as before. A missing dir is cold, not
// an error.
func (s *System) LoadWarmState(dir string) (bool, error) {
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	store, err := filestore.Open(dir, warmSegCap)
	if err != nil {
		return false, err
	}
	var best *warmState
	err = store.Scan(func(_ filestore.RecordID, payload []byte) bool {
		var st warmState
		if json.Unmarshal(payload, &st) != nil {
			return true // skip undecodable records, keep scanning
		}
		if best == nil || st.Epoch > best.Epoch {
			best = &st
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if best == nil {
		return false, nil
	}

	// Resolve queue documents against the live corpus before touching any
	// state; an unresolvable title means the snapshot describes another
	// corpus and is stale as a whole. The title map is built only when
	// there is a queue to resolve — the common queue-less load skips it.
	var queue []task
	if len(best.Queue) > 0 {
		byTitle := make(map[string]*doc.Document, s.Corpus.Len())
		for _, d := range s.Corpus.Docs() {
			byTitle[d.Title] = d
		}
		queue = make([]task, 0, len(best.Queue))
		for _, wt := range best.Queue {
			tk := task{attribute: wt.Attribute, priority: wt.Priority, part: wt.Part}
			for _, title := range wt.Docs {
				d, ok := byTitle[title]
				if !ok {
					s.Stats.Inc("core.warmstate.stale", 1)
					return false, nil
				}
				tk.docs = append(tk.docs, d)
			}
			queue = append(queue, tk)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat.epoch > best.Epoch {
		// The live cache has been invalidated or written past the save
		// point; the snapshot is from an older life of the table.
		s.Stats.Inc("core.warmstate.stale", 1)
		return false, nil
	}
	rows, err := s.extractedRowCount()
	if err != nil {
		return false, err
	}
	if best.Rows != rows {
		s.Stats.Inc("core.warmstate.stale", 1)
		return false, nil
	}
	// Content validation: the snapshot's checksum must match the live
	// table's (entity, attribute, qualifier) multiset hash, so a snapshot
	// from a same-size-but-different table is refused. The engine
	// maintains that digest incrementally as table metadata (persisted
	// through checkpoints, adjusted by crash recovery), so even a fresh
	// process verifies in O(1) — no rebuild scan. The scan fallback below
	// only runs when content hashing is not enabled on the table.
	if h, ok := s.DB.ContentHash(TableName); ok {
		if h != best.Checksum {
			s.Stats.Inc("core.warmstate.stale", 1)
			return false, nil
		}
		s.Stats.Inc("core.warmstate.o1verify", 1)
	} else {
		if err := s.ensureCatalogLocked(); err != nil {
			return false, err
		}
		if s.cat.hash != best.Checksum {
			s.Stats.Inc("core.warmstate.stale", 1)
			return false, nil
		}
	}
	s.cat.installWarm(best.Entities, best.Attributes, best.Qualifiers, best.Epoch, best.Checksum)
	// The install replaced the cache's reformulator feed; any published
	// catalog snapshot is now a discarded generation.
	s.dropCatSnapLocked()
	s.queue = taskQueue{}
	for _, tk := range queue {
		s.queue.push(tk)
	}
	s.done = map[string]int{}
	for a, n := range best.Done {
		s.done[a] = n
	}
	s.total = map[string]int{}
	for a, n := range best.Total {
		s.total[a] = n
	}
	s.Stats.Inc("core.warmstate.loaded", 1)
	return true, nil
}

// Open builds a System, runs setup (typically the deterministic
// generation that repopulates the extracted table after a restart), then
// restores warm state from warmDir. warm reports whether a snapshot was
// accepted; when false the system is fully functional but cold — the
// first Catalog()/AskGuided rebuilds by scan.
func Open(cfg Config, warmDir string, setup func(*System) error) (s *System, warm bool, err error) {
	s, err = New(cfg)
	if err != nil {
		return nil, false, err
	}
	if setup != nil {
		if err := setup(s); err != nil {
			return nil, false, err
		}
	}
	warm, err = s.LoadWarmState(warmDir)
	return s, warm, err
}

// OpenReport describes what OpenDir found on disk.
type OpenReport struct {
	// Reopened is true when the on-disk database already held extracted
	// rows: the database recovered from its files and setup was skipped.
	Reopened bool
	// Warm is true when a warm snapshot passed validation, so the catalog
	// cache and task queue resumed without a cold rebuild.
	Warm bool
}

// OpenDir is the single-root disk lifecycle: the crash-safe database
// lives in dir/db and warm snapshots in dir/warm, so the extracted
// structure and the caches over it reopen from the same place. On a
// fresh directory it runs setup to generate the structure; on an
// existing one the database recovers from disk, setup is skipped, and
// warm state restores on top of the recovered table. Close the returned
// System to checkpoint the database and save a fresh warm snapshot.
func OpenDir(dir string, cfg Config, setup func(*System) error) (*System, OpenReport, error) {
	cfg.Dir = filepath.Join(dir, "db")
	s, err := New(cfg)
	if err != nil {
		return nil, OpenReport{}, err
	}
	// On any later failure, release the database files (and the directory
	// lock they hold) before reporting the error; best effort, since the
	// failure may have left active state Close cannot checkpoint.
	fail := func(rep OpenReport, err error) (*System, OpenReport, error) {
		s.DB.Close()
		return nil, rep, err
	}
	rows, err := s.extractedRowCount()
	if err != nil {
		return fail(OpenReport{}, err)
	}
	rep := OpenReport{Reopened: rows > 0}
	if !rep.Reopened && setup != nil {
		if err := setup(s); err != nil {
			return fail(rep, err)
		}
	}
	s.warmDir = filepath.Join(dir, "warm")
	rep.Warm, err = s.LoadWarmState(s.warmDir)
	if err != nil {
		return fail(rep, err)
	}
	return s, rep, nil
}

// Close persists what the next life needs and releases the storage: a
// warm snapshot is saved (when this System was opened via OpenDir) and a
// disk-backed database is checkpointed and closed, after which OpenDir
// on the same root reopens both. In-memory systems close to a no-op.
//
// Close is idempotent and safe under concurrent callers: the first caller
// flips the system into closing (new operations get ErrClosed), drains
// in-flight operations, then tears down; every other caller — concurrent
// or later — waits for that teardown and returns its result. This is the
// drain primitive the network server's graceful shutdown stands on.
func (s *System) Close() error {
	s.lifeMu.Lock()
	if s.closing {
		// Another Close won; wait for it and share its verdict.
		done := s.closeDone
		s.lifeMu.Unlock()
		<-done
		return s.closeErr
	}
	s.closing = true
	s.closeDone = make(chan struct{})
	for s.inflight > 0 {
		s.lifeCond.Wait()
	}
	done := s.closeDone
	s.lifeMu.Unlock()

	var err error
	if s.warmDir != "" {
		err = s.SaveWarmState(s.warmDir)
	}
	if s.diskBacked {
		if cerr := s.DB.Close(); err == nil {
			err = cerr
		}
	}
	s.lifeMu.Lock()
	s.closeErr = err
	s.lifeMu.Unlock()
	close(done)
	return err
}

// Checkpoint forces everything committed so far into the data pages and
// truncates the WAL — without stalling concurrent work. The engine's
// checkpoints are fuzzy (PR5): they run while guided-query writers,
// CorrectValue, and extraction transactions keep committing, so a
// long-running System can bound its log growth and tighten its
// crash-recovery window on a timer or after large ingests, with no
// quiesce coordination. (Close still checkpoints; this makes the same
// durability available mid-flight.)
func (s *System) Checkpoint() error {
	if err := s.beginOp(); err != nil {
		return err
	}
	defer s.endOp()
	return s.DB.Checkpoint()
}

// ExtractedRows returns the number of rows in the extracted table, read
// O(1) from the entity index (diagnostics, CLI, and reopen detection).
func (s *System) ExtractedRows() (int, error) {
	if err := s.beginOp(); err != nil {
		return 0, err
	}
	defer s.endOp()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.extractedRowCount()
}

// EngineStats bundles the storage-engine health counters the serving
// layer reports (PR9: the server reads these through its Backend
// interface instead of reaching into System.DB, so a sharded backend
// can aggregate them across engines).
type EngineStats struct {
	Checkpoints    int64
	WALSyncs       int64
	IndexesLoaded  int
	IndexesRebuilt int

	// Buffer-pool vitals (PR10): raw counters so a sharded backend can
	// sum them; hit rate is derived at the reporting edge.
	BufferHits       int64
	BufferMisses     int64
	BufferEvictions  int64
	BufferScanBypass int64
	BufferCapacity   int // frames (summed across shards when aggregated)
	BufferResident   int
}

// EngineStats returns the engine's current health counters.
func (s *System) EngineStats() EngineStats {
	os := s.DB.LastOpenStats()
	bs := s.DB.BufferStats()
	return EngineStats{
		Checkpoints:      s.DB.Checkpoints(),
		WALSyncs:         s.DB.WALSyncs(),
		IndexesLoaded:    os.IndexesLoaded,
		IndexesRebuilt:   os.IndexesRebuilt,
		BufferHits:       bs.Hits,
		BufferMisses:     bs.Misses,
		BufferEvictions:  bs.Evictions,
		BufferScanBypass: bs.ScanBypass,
		BufferCapacity:   bs.Capacity,
		BufferResident:   bs.Resident,
	}
}

// WarmEpoch returns the catalog cache's current invalidation epoch
// (diagnostics and tests).
func (s *System) WarmEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat.epoch
}

// PendingByAttribute returns the number of pending tasks per attribute,
// sorted by attribute name (diagnostics and warm-start tests).
func (s *System) PendingByAttribute() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, tk := range s.queue.snapshot() {
		out[tk.attribute]++
	}
	return out
}
