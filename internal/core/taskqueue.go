package core

import (
	"container/heap"
	"sort"
)

// taskQueue is the pending-extraction queue: a priority queue over tasks
// (highest priority first, FIFO among equal priorities — the same order
// the previous stable-sort implementation produced) with a per-attribute
// index so demand boosts touch only the affected attribute's tasks.
//
// Complexities, n = pending tasks, k = tasks of one attribute:
//   - push:            O(log n)
//   - pop (highest):   O(log n)
//   - boost(attr):     O(k log n)   (was O(n) scan + O(n log n) sort per drain)
//
// Guarded by System.mu.
type taskQueue struct {
	items   taskHeap
	byAttr  map[string][]*taskItem
	nextSeq int64
}

// taskItem is a queued task plus its bookkeeping positions in the heap and
// in its attribute's index slice.
type taskItem struct {
	task
	seq     int64 // insertion order, breaks priority ties FIFO
	heapIdx int
	attrIdx int
}

type taskHeap []*taskItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	it := x.(*taskItem)
	it.heapIdx = len(*h)
	*h = append(*h, it)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

func (q *taskQueue) len() int { return len(q.items) }

// push enqueues one task.
func (q *taskQueue) push(t task) {
	if q.byAttr == nil {
		q.byAttr = map[string][]*taskItem{}
	}
	it := &taskItem{task: t, seq: q.nextSeq}
	q.nextSeq++
	it.attrIdx = len(q.byAttr[t.attribute])
	q.byAttr[t.attribute] = append(q.byAttr[t.attribute], it)
	heap.Push(&q.items, it)
}

// pop removes and returns the highest-priority task. ok is false when the
// queue is empty.
func (q *taskQueue) pop() (task, bool) {
	if len(q.items) == 0 {
		return task{}, false
	}
	it := heap.Pop(&q.items).(*taskItem)
	q.dropFromAttrIndex(it)
	return it.task, true
}

// dropFromAttrIndex swap-deletes the item from its attribute's index.
func (q *taskQueue) dropFromAttrIndex(it *taskItem) {
	idx := q.byAttr[it.attribute]
	last := len(idx) - 1
	moved := idx[last]
	idx[it.attrIdx] = moved
	moved.attrIdx = it.attrIdx
	idx[last] = nil
	if last == 0 {
		delete(q.byAttr, it.attribute)
	} else {
		q.byAttr[it.attribute] = idx[:last]
	}
}

// snapshot returns every pending task in pop order (priority desc, FIFO
// among equals) without draining the queue; warm-start persistence saves
// this so a restored queue replays pushes in the same order.
func (q *taskQueue) snapshot() []task {
	items := append([]*taskItem(nil), q.items...)
	sort.Slice(items, func(i, j int) bool {
		if items[i].priority != items[j].priority {
			return items[i].priority > items[j].priority
		}
		return items[i].seq < items[j].seq
	})
	out := make([]task, len(items))
	for i, it := range items {
		out[i] = it.task
	}
	return out
}

// boost raises the priority of every pending task of one attribute and
// restores heap order for each.
func (q *taskQueue) boost(attribute string, delta float64) {
	for _, it := range q.byAttr[attribute] {
		it.priority += delta
		heap.Fix(&q.items, it.heapIdx)
	}
}
