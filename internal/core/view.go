package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/browse"
	"repro/internal/rdbms"
	"repro/internal/search"
)

// View is a consistent read-only handle over the system: every query it
// serves — guided, keyword, SQL, browse, lineage — observes the extracted
// structure exactly as of one commit LSN, pinned when the View began.
// Concurrent writers keep committing; the View keeps answering from its
// snapshot, with zero lock-manager acquisitions (reads resolve row
// visibility through the MVCC version store instead of taking locks).
//
// A View counts as one in-flight serving operation from creation until
// Close: the system's graceful drain waits for open Views, and the version
// store's GC horizon cannot pass the View's LSN while it is open — so
// close Views promptly. A View is not safe for concurrent use by multiple
// goroutines; open one View per goroutine (they are cheap).
type View struct {
	s    *System
	snap *rdbms.Snap
	ctx  context.Context

	// cat is the catalog generation this View reformulates with, fetched
	// lazily on the first AskGuided so keyword-only and SQL-only Views
	// never pay for a catalog rebuild.
	cat    *catSnap
	closed atomic.Bool
}

// View opens a read-only snapshot handle at the current commit horizon.
// ctx governs every operation on the returned View (deadlines cut scans
// off mid-flight). The caller must Close it.
func (s *System) View(ctx context.Context) (*View, error) {
	if err := s.beginOp(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		s.endOp()
		return nil, err
	}
	return &View{s: s, ctx: ctx, snap: s.DB.BeginSnapshot().WithContext(ctx)}, nil
}

// LSN reports the commit LSN this View is pinned at: it sees exactly the
// transactions whose commit records fall at or before this point.
func (v *View) LSN() rdbms.LSN { return v.snap.LSN() }

// Close releases the snapshot (unpinning the version-store GC horizon) and
// the View's in-flight-operation slot. Idempotent.
func (v *View) Close() {
	if !v.closed.CompareAndSwap(false, true) {
		return
	}
	v.snap.Close()
	v.s.endOp()
}

// errViewClosed guards use-after-Close uniformly across View methods.
func (v *View) err() error {
	if v.closed.Load() {
		return fmt.Errorf("core: view is closed")
	}
	return v.ctx.Err()
}

// reform returns the View's pinned catalog generation, fetching it on
// first use. The fetch is one atomic load on the fast path; only the
// first reformulation after an invalidating write rebuilds the catalog.
func (v *View) reform() (*catSnap, error) {
	if v.cat == nil {
		cs, err := v.s.catalogSnap()
		if err != nil {
			return nil, err
		}
		v.cat = cs
	}
	return v.cat, nil
}

// KeywordSearch is the View-scoped exploitation mode 1: ranked document
// hits. The document index is immutable after build, so keyword results
// are trivially snapshot-consistent.
func (v *View) KeywordSearch(query string, k int) ([]search.Hit, error) {
	if err := v.err(); err != nil {
		return nil, err
	}
	v.s.Stats.Inc("core.queries.keyword", 1)
	return v.s.Index.Search(query, k, search.BM25), nil
}

// AskGuided is the View-scoped exploitation mode 2: reformulate a keyword
// query into candidate structured queries and execute the best one at the
// View's LSN. Unlike the one-shot System.AskGuided it does not boost
// extraction demand — a pinned View is an observer, not a workload signal.
func (v *View) AskGuided(query string, k int) (*GuidedAnswer, error) {
	if err := v.err(); err != nil {
		return nil, err
	}
	cs, err := v.reform()
	if err != nil {
		return nil, err
	}
	cands := cs.reform.Candidates(query, k)
	out := &GuidedAnswer{Candidates: cands}
	if len(cands) == 0 {
		return out, nil
	}
	v.s.Stats.Inc("core.queries.guided", 1)
	top := cands[0]
	rs, err := v.snap.Query(top.SQL)
	if err != nil {
		return nil, fmt.Errorf("core: executing %q: %w", top.SQL, err)
	}
	out.Answer = rs
	out.Coverage = v.s.Coverage(top.Attribute)
	return out, nil
}

// SQL is the View-scoped exploitation mode 3, restricted to SELECT: the
// statement executes against the snapshot with zero lock acquisitions.
// Mutations and DDL are refused — route writes through System.SQL.
func (v *View) SQL(query string) (*rdbms.ResultSet, error) {
	if err := v.err(); err != nil {
		return nil, err
	}
	v.s.Stats.Inc("core.queries.sql", 1)
	return v.snap.Query(query)
}

// Browse is the View-scoped exploitation mode 4: a faceted browser built
// from one snapshot scan, so its facets describe exactly the structure at
// the View's LSN.
func (v *View) Browse() (*browse.Browser, error) {
	if err := v.err(); err != nil {
		return nil, err
	}
	var rows []browse.Row
	err := v.snap.Scan(TableName, func(_ rdbms.RID, t rdbms.Tuple) bool {
		rows = append(rows, browse.Row{
			Entity: t[0].S, Attribute: t[1].S, Qualifier: t[2].S,
			Value: t[3].S, Conf: t[5].F,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	v.s.Stats.Inc("core.queries.browse", 1)
	return browse.New(rows), nil
}

// ExplainFact renders the lineage of an extracted fact (see
// System.ExplainFact). Provenance lives in the UQL environment rather
// than the versioned store, so lineage reflects the latest generation
// run, not the View's LSN.
func (v *View) ExplainFact(entity, attribute, qualifier string) (string, error) {
	if err := v.err(); err != nil {
		return "", err
	}
	return v.s.explainFact(entity, attribute, qualifier)
}
