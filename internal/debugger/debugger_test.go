package debugger

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestPaperExample135Degrees(t *testing.T) {
	// The paper: "if this module has learned that the monthly temperature
	// of a city cannot exceed 130 degrees, then it can flag an extracted
	// temperature of 135 as suspicious."
	d := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d.Observe("temperature", fmt.Sprintf("%.1f", 10+rng.Float64()*85)) // 10..95 °F
	}
	v := d.Check("Springfield, Illinois", "temperature", "135")
	if len(v) == 0 {
		t.Fatal("135 should be flagged")
	}
	if v[0].Severity != SevSuspect {
		t.Fatalf("severity: %v", v[0])
	}
	if !strings.Contains(v[0].String(), "temperature") {
		t.Fatalf("rendering: %v", v[0])
	}
	// A normal value passes.
	if v := d.Check("Madison, Wisconsin", "temperature", "62.0"); len(v) != 0 {
		t.Fatalf("62 flagged: %v", v)
	}
}

func TestAssertedRange(t *testing.T) {
	d := New()
	d.AssertRange("temperature", -60, 130)
	v := d.Check("x", "temperature", "135")
	if len(v) != 1 || !strings.Contains(v[0].Constraint, "asserted range") {
		t.Fatalf("asserted check: %v", v)
	}
	if v := d.Check("x", "temperature", "72"); len(v) != 0 {
		t.Fatalf("72 flagged: %v", v)
	}
	// Non-numeric values are not range-checked.
	if v := d.Check("x", "temperature", "mild"); len(v) != 0 {
		t.Fatalf("text value range-flagged: %v", v)
	}
}

func TestLearnedRangeRobustToCorruption(t *testing.T) {
	// 5% corrupted observations must not destroy the learned fence.
	d := New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		d.Observe("temp", fmt.Sprintf("%.1f", 20+rng.Float64()*60))
	}
	for i := 0; i < 20; i++ {
		d.Observe("temp", fmt.Sprintf("%.1f", 140+rng.Float64()*40))
	}
	lo, hi, ok := d.LearnedRange("temp")
	if !ok {
		t.Fatal("no learned range")
	}
	if hi > 139 {
		t.Fatalf("fence [%f, %f] swallowed the corruption", lo, hi)
	}
	if len(d.Check("e", "temp", "150")) == 0 {
		t.Fatal("150 should still be flagged despite dirty training data")
	}
}

func TestTooFewSamplesNoRange(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		d.Observe("a", "10")
	}
	if _, _, ok := d.LearnedRange("a"); ok {
		t.Fatal("range learned from 5 samples")
	}
	if v := d.Check("e", "a", "99999"); len(v) != 0 {
		t.Fatalf("flagged without enough data: %v", v)
	}
}

func TestFormatLearning(t *testing.T) {
	d := New()
	for i := 0; i < 50; i++ {
		d.Observe("founded", fmt.Sprintf("%d", 1800+i*3))
	}
	v := d.Check("e", "founded", "next year")
	found := false
	for _, viol := range v {
		if strings.Contains(viol.Constraint, "format") {
			found = true
		}
	}
	if !found {
		t.Fatalf("format violation missing: %v", v)
	}
	if v := d.Check("e", "founded", "1920"); len(v) != 0 {
		t.Fatalf("valid year flagged: %v", v)
	}
}

func TestShapeOf(t *testing.T) {
	cases := map[string]string{
		"1856":        "year",
		"233209":      "numeric",
		"62.5":        "numeric",
		"-10":         "numeric",
		"Madison":     "proper",
		"New Haven":   "proper",
		"some text 7": "text",
	}
	for in, want := range cases {
		if got := shapeOf(in); got != want {
			t.Errorf("shapeOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSweepOrdersSuspectFirst(t *testing.T) {
	d := New()
	for i := 0; i < 50; i++ {
		d.Observe("pop", fmt.Sprintf("%d", 10000+i*1000))
		d.Observe("name", "Madison")
	}
	out := d.Sweep([][3]string{
		{"a", "name", "lowercase weird 123"}, // format warn
		{"b", "pop", "999999999"},            // range suspect
	})
	if len(out) < 2 {
		t.Fatalf("sweep found %d", len(out))
	}
	if out[0].Severity != SevSuspect {
		t.Fatalf("suspect should sort first: %v", out)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if q := quantile(vals, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := quantile(vals, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(vals, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}
