// Package debugger is the semantic debugger of Figure 1 (Part VI): it
// learns application semantics from the data it sees — numeric ranges,
// value formats, and inter-attribute dependencies — then monitors the data
// generation process and flags values "not in sync" with those semantics.
// The paper's example is exactly the check implemented here: having
// learned that monthly city temperatures do not exceed ~130 degrees, the
// debugger flags an extracted 135 as suspicious.
package debugger

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// Severity grades a violation.
type Severity string

const (
	// SevWarn marks mildly unusual values.
	SevWarn Severity = "warn"
	// SevSuspect marks values the debugger believes are wrong.
	SevSuspect Severity = "suspect"
)

// Violation is one flagged datum.
type Violation struct {
	Entity     string
	Attribute  string
	Value      string
	Constraint string
	Severity   Severity
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s.%s=%q violates %s", v.Severity, v.Entity, v.Attribute, v.Value, v.Constraint)
}

// rangeModel captures robust numeric bounds learned from observations.
type rangeModel struct {
	values []float64
	sorted bool
}

func (m *rangeModel) add(v float64) {
	m.values = append(m.values, v)
	m.sorted = false
}

// robustBounds returns a trimmed-support fence: [q05 - m*w, q95 + m*w]
// where w = q95 - q05 and m is the margin. Trimming at the 5th/95th
// percentiles keeps the fence robust to a minority of corrupted training
// observations, while the margin tolerates legitimate tail values.
func (m *rangeModel) robustBounds(margin float64) (lo, hi float64, ok bool) {
	if len(m.values) < 8 {
		return 0, 0, false
	}
	if !m.sorted {
		sort.Float64s(m.values)
		m.sorted = true
	}
	q05 := quantile(m.values, 0.05)
	q95 := quantile(m.values, 0.95)
	w := q95 - q05
	if w == 0 {
		w = math.Max(1, math.Abs(q95)*0.05)
	}
	return q05 - margin*w, q95 + margin*w, true
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// formatModel tracks which shape classes an attribute's values take
// (numeric, year-like, capitalized word, free text).
type formatModel struct {
	counts map[string]int
	total  int
}

var (
	reNumeric = regexp.MustCompile(`^-?\d+(\.\d+)?$`)
	reYear    = regexp.MustCompile(`^(1[6-9]\d\d|20\d\d)$`)
	reProper  = regexp.MustCompile(`^[A-Z][a-z]+([ ,-][A-Z]?[a-z]+)*$`)
)

func shapeOf(v string) string {
	switch {
	case reYear.MatchString(v):
		return "year"
	case reNumeric.MatchString(v):
		return "numeric"
	case reProper.MatchString(v):
		return "proper"
	default:
		return "text"
	}
}

func (m *formatModel) add(v string) {
	if m.counts == nil {
		m.counts = map[string]int{}
	}
	m.counts[shapeOf(v)]++
	m.total++
}

// dominant returns the majority shape if it covers >= 90% of samples.
func (m *formatModel) dominant() (string, bool) {
	if m.total < 10 {
		return "", false
	}
	for shape, n := range m.counts {
		if float64(n) >= 0.9*float64(m.total) {
			return shape, true
		}
	}
	return "", false
}

// Debugger learns constraints per attribute and checks values against
// them. Domain constraints can also be asserted directly (the developer or
// HI supplying "temperatures never exceed 130").
type Debugger struct {
	mu      sync.Mutex
	ranges  map[string]*rangeModel
	formats map[string]*formatModel
	// hard bounds asserted by developers/HI: attribute -> [lo, hi]
	asserted map[string][2]float64
	fenceK   float64
}

// New returns a debugger with the default fence margin (0.45 of the
// trimmed support width).
func New() *Debugger {
	return &Debugger{
		ranges:   map[string]*rangeModel{},
		formats:  map[string]*formatModel{},
		asserted: map[string][2]float64{},
		fenceK:   0.45,
	}
}

// AssertRange records a hard domain constraint for an attribute.
func (d *Debugger) AssertRange(attribute string, lo, hi float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.asserted[attribute] = [2]float64{lo, hi}
}

// Observe learns from a value presumed mostly-clean. (Learning tolerates
// some corruption: the IQR fence is robust to a minority of outliers.)
func (d *Debugger) Observe(attribute, value string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm := d.formats[attribute]
	if fm == nil {
		fm = &formatModel{}
		d.formats[attribute] = fm
	}
	fm.add(value)
	if f, err := strconv.ParseFloat(value, 64); err == nil {
		rm := d.ranges[attribute]
		if rm == nil {
			rm = &rangeModel{}
			d.ranges[attribute] = rm
		}
		rm.add(f)
	}
}

// Check tests a value against everything the debugger knows. A nil return
// means the value looks consistent with learned semantics.
func (d *Debugger) Check(entity, attribute, value string) []Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Violation
	if bounds, ok := d.asserted[attribute]; ok {
		if f, err := strconv.ParseFloat(value, 64); err == nil {
			if f < bounds[0] || f > bounds[1] {
				out = append(out, Violation{
					Entity: entity, Attribute: attribute, Value: value,
					Constraint: fmt.Sprintf("asserted range [%g, %g]", bounds[0], bounds[1]),
					Severity:   SevSuspect,
				})
			}
		}
	}
	if rm := d.ranges[attribute]; rm != nil {
		if f, err := strconv.ParseFloat(value, 64); err == nil {
			if lo, hi, ok := rm.robustBounds(d.fenceK); ok && (f < lo || f > hi) {
				out = append(out, Violation{
					Entity: entity, Attribute: attribute, Value: value,
					Constraint: fmt.Sprintf("learned range [%.1f, %.1f]", lo, hi),
					Severity:   SevSuspect,
				})
			}
		}
	}
	if fm := d.formats[attribute]; fm != nil {
		if dom, ok := fm.dominant(); ok && shapeOf(value) != dom {
			out = append(out, Violation{
				Entity: entity, Attribute: attribute, Value: value,
				Constraint: fmt.Sprintf("learned format %q", dom),
				Severity:   SevWarn,
			})
		}
	}
	return out
}

// Sweep checks a batch of (entity, attribute, value) triples and returns
// all violations, suspect first.
func (d *Debugger) Sweep(triples [][3]string) []Violation {
	var out []Violation
	for _, tr := range triples {
		out = append(out, d.Check(tr[0], tr[1], tr[2])...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Severity == SevSuspect && out[j].Severity != SevSuspect
	})
	return out
}

// LearnedRange exposes the current learned fence for an attribute.
func (d *Debugger) LearnedRange(attribute string) (lo, hi float64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rm := d.ranges[attribute]
	if rm == nil {
		return 0, 0, false
	}
	return rm.robustBounds(d.fenceK)
}
