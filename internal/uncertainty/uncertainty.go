// Package uncertainty is the processing layer's uncertainty manager
// (Figure 1, Part V): extracted tuples carry confidences, operators
// combine them under an independence assumption, corroborating evidence
// is merged with noisy-or, human feedback updates beliefs, and queries can
// ask for expected values and top-k most-probable answers instead of
// pretending the extracted data is certain.
package uncertainty

import (
	"fmt"
	"math"
	"sort"
)

// Conf is a probability in [0, 1].
type Conf = float64

// And combines confidences of jointly required evidence (independent
// conjunction): both sources must be right.
func And(a, b Conf) Conf { return clamp(a * b) }

// NoisyOr merges corroborating evidence for the same fact: each source
// independently could establish it.
func NoisyOr(confs ...Conf) Conf {
	p := 1.0
	for _, c := range confs {
		p *= 1 - clamp(c)
	}
	return clamp(1 - p)
}

// BayesUpdate revises a prior with an observation from a source whose
// reliability (probability of being correct) is given. agree reports
// whether the source affirmed the fact.
func BayesUpdate(prior Conf, reliability float64, agree bool) Conf {
	prior = clamp(prior)
	r := clampOpen(reliability)
	var pObs float64
	var pObsGivenTrue float64
	if agree {
		pObsGivenTrue = r
		pObs = r*prior + (1-r)*(1-prior)
	} else {
		pObsGivenTrue = 1 - r
		pObs = (1-r)*prior + r*(1-prior)
	}
	if pObs == 0 {
		return prior
	}
	return clamp(pObsGivenTrue * prior / pObs)
}

func clamp(c Conf) Conf {
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

func clampOpen(c float64) float64 {
	const eps = 1e-9
	if c < eps {
		return eps
	}
	if c > 1-eps {
		return 1 - eps
	}
	return c
}

// Fact is an uncertain attribute-value assertion about an entity.
type Fact struct {
	Entity    string
	Attribute string
	Qualifier string
	Value     string
	Conf      Conf
	// Sources lists provenance ids (extraction records, HI answers).
	Sources []int64
}

// Key identifies the assertion independent of its value: an entity's
// attribute (+qualifier) holds exactly one true value, so different values
// under one key are mutually exclusive alternatives.
func (f *Fact) Key() string {
	return f.Entity + "\x00" + f.Attribute + "\x00" + f.Qualifier
}

func (f *Fact) String() string {
	if f.Qualifier != "" {
		return fmt.Sprintf("%s.%s[%s]=%s (%.2f)", f.Entity, f.Attribute, f.Qualifier, f.Value, f.Conf)
	}
	return fmt.Sprintf("%s.%s=%s (%.2f)", f.Entity, f.Attribute, f.Value, f.Conf)
}

// Store accumulates uncertain facts, merging corroboration and tracking
// alternative values per key.
type Store struct {
	byKey map[string][]*Fact // alternatives, kept sorted by Conf desc
	n     int
}

// NewStore returns an empty fact store.
func NewStore() *Store { return &Store{byKey: map[string][]*Fact{}} }

// Len returns the number of distinct (key, value) assertions.
func (s *Store) Len() int { return s.n }

// Assert records a fact. A repeated (key, value) pair merges by noisy-or;
// a new value becomes an alternative.
func (s *Store) Assert(f Fact) *Fact {
	alts := s.byKey[f.Key()]
	for _, existing := range alts {
		if existing.Value == f.Value {
			existing.Conf = NoisyOr(existing.Conf, f.Conf)
			existing.Sources = append(existing.Sources, f.Sources...)
			s.sortAlts(f.Key())
			return existing
		}
	}
	cp := f
	s.byKey[f.Key()] = append(alts, &cp)
	s.n++
	s.sortAlts(f.Key())
	return &cp
}

func (s *Store) sortAlts(key string) {
	alts := s.byKey[key]
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Conf > alts[j].Conf })
}

// Feedback applies a human verdict on a specific (key, value): agreement
// raises its confidence by Bayes update with the answerer's reliability,
// disagreement lowers it.
func (s *Store) Feedback(key, value string, reliability float64, agree bool) bool {
	for _, f := range s.byKey[key] {
		if f.Value == value {
			f.Conf = BayesUpdate(f.Conf, reliability, agree)
			s.sortAlts(key)
			return true
		}
	}
	return false
}

// Best returns the most probable value for key, or false if none.
func (s *Store) Best(key string) (*Fact, bool) {
	alts := s.byKey[key]
	if len(alts) == 0 {
		return nil, false
	}
	return alts[0], true
}

// Alternatives returns all values for a key, most probable first.
func (s *Store) Alternatives(key string) []*Fact {
	return append([]*Fact(nil), s.byKey[key]...)
}

// Keys returns all keys, sorted.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TopK returns the k highest-confidence facts across the store (best value
// per key only).
func (s *Store) TopK(k int) []*Fact {
	var out []*Fact
	for _, key := range s.Keys() {
		if best, ok := s.Best(key); ok {
			out = append(out, best)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Conf != out[j].Conf {
			return out[i].Conf > out[j].Conf
		}
		return out[i].Key() < out[j].Key()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Threshold returns facts whose best value clears minConf.
func (s *Store) Threshold(minConf Conf) []*Fact {
	var out []*Fact
	for _, key := range s.Keys() {
		if best, ok := s.Best(key); ok && best.Conf >= minConf {
			out = append(out, best)
		}
	}
	return out
}

// ExpectedFloat treats the alternatives of key as a distribution over
// numeric values (confidences renormalized) and returns the expectation.
// parse failures are skipped; ok is false if nothing parses.
func (s *Store) ExpectedFloat(key string, parse func(string) (float64, error)) (float64, bool) {
	alts := s.byKey[key]
	total := 0.0
	sum := 0.0
	for _, f := range alts {
		v, err := parse(f.Value)
		if err != nil {
			continue
		}
		total += f.Conf
		sum += f.Conf * v
	}
	if total == 0 {
		return 0, false
	}
	return sum / total, true
}

// Entropy returns the Shannon entropy (bits) of a key's renormalized
// alternative distribution — the question router uses it to prioritize
// ambiguous facts for human review.
func (s *Store) Entropy(key string) float64 {
	alts := s.byKey[key]
	total := 0.0
	for _, f := range alts {
		total += f.Conf
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, f := range alts {
		p := f.Conf / total
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
