package uncertainty

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestAndNoisyOr(t *testing.T) {
	if got := And(0.8, 0.5); got != 0.4 {
		t.Fatalf("And = %v", got)
	}
	if got := NoisyOr(0.5, 0.5); got != 0.75 {
		t.Fatalf("NoisyOr = %v", got)
	}
	if got := NoisyOr(0.9); got != 0.9 {
		t.Fatalf("single NoisyOr = %v", got)
	}
	if got := NoisyOr(); got != 0 {
		t.Fatalf("empty NoisyOr = %v", got)
	}
	if got := NoisyOr(1.0, 0.2); got != 1.0 {
		t.Fatalf("certain NoisyOr = %v", got)
	}
}

func TestCombinatorsStayInRange(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		for _, v := range []float64{And(a, b), NoisyOr(a, b), BayesUpdate(a, b, true), BayesUpdate(a, b, false)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBayesUpdateDirections(t *testing.T) {
	prior := 0.6
	up := BayesUpdate(prior, 0.9, true)
	if up <= prior {
		t.Fatalf("agreement should raise: %v -> %v", prior, up)
	}
	down := BayesUpdate(prior, 0.9, false)
	if down >= prior {
		t.Fatalf("disagreement should lower: %v -> %v", prior, down)
	}
	// An unreliable source (reliability 0.5) should not move the prior.
	same := BayesUpdate(prior, 0.5, true)
	if math.Abs(same-prior) > 1e-9 {
		t.Fatalf("coin-flip source moved prior: %v", same)
	}
	// A source more often wrong than right moves it the other way.
	inverted := BayesUpdate(prior, 0.2, true)
	if inverted >= prior {
		t.Fatalf("anti-reliable agreement should lower: %v", inverted)
	}
}

func TestStoreAssertMergeAlternatives(t *testing.T) {
	s := NewStore()
	f1 := s.Assert(Fact{Entity: "Madison", Attribute: "temperature", Qualifier: "September", Value: "62", Conf: 0.6, Sources: []int64{1}})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Corroboration merges by noisy-or.
	f2 := s.Assert(Fact{Entity: "Madison", Attribute: "temperature", Qualifier: "September", Value: "62", Conf: 0.5, Sources: []int64{2}})
	if f1 != f2 {
		t.Fatal("same value should merge into one fact")
	}
	if got := f2.Conf; got != 0.8 {
		t.Fatalf("merged conf = %v, want 0.8", got)
	}
	if len(f2.Sources) != 2 {
		t.Fatalf("sources not merged: %v", f2.Sources)
	}
	// A different value is an alternative, not a merge.
	s.Assert(Fact{Entity: "Madison", Attribute: "temperature", Qualifier: "September", Value: "135", Conf: 0.3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	best, ok := s.Best(f1.Key())
	if !ok || best.Value != "62" {
		t.Fatalf("best = %+v", best)
	}
	alts := s.Alternatives(f1.Key())
	if len(alts) != 2 || alts[1].Value != "135" {
		t.Fatalf("alternatives: %v", alts)
	}
}

func TestStoreFeedback(t *testing.T) {
	s := NewStore()
	f := s.Assert(Fact{Entity: "e", Attribute: "a", Value: "v1", Conf: 0.5})
	s.Assert(Fact{Entity: "e", Attribute: "a", Value: "v2", Conf: 0.45})
	// Reliable human rejects v1 repeatedly: v2 should become best.
	for i := 0; i < 3; i++ {
		if !s.Feedback(f.Key(), "v1", 0.9, false) {
			t.Fatal("feedback target not found")
		}
	}
	best, _ := s.Best(f.Key())
	if best.Value != "v2" {
		t.Fatalf("after negative feedback best = %+v", best)
	}
	if s.Feedback(f.Key(), "nope", 0.9, true) {
		t.Fatal("feedback on missing value should return false")
	}
	if s.Feedback("missing-key", "v", 0.9, true) {
		t.Fatal("feedback on missing key should return false")
	}
}

func TestStoreBestMissing(t *testing.T) {
	s := NewStore()
	if _, ok := s.Best("nothing"); ok {
		t.Fatal("Best on empty key")
	}
}

func TestStoreTopKAndThreshold(t *testing.T) {
	s := NewStore()
	s.Assert(Fact{Entity: "a", Attribute: "x", Value: "1", Conf: 0.9})
	s.Assert(Fact{Entity: "b", Attribute: "x", Value: "2", Conf: 0.7})
	s.Assert(Fact{Entity: "c", Attribute: "x", Value: "3", Conf: 0.3})
	top := s.TopK(2)
	if len(top) != 2 || top[0].Entity != "a" || top[1].Entity != "b" {
		t.Fatalf("TopK: %v", top)
	}
	all := s.TopK(0)
	if len(all) != 3 {
		t.Fatalf("TopK(0): %v", all)
	}
	hi := s.Threshold(0.65)
	if len(hi) != 2 {
		t.Fatalf("Threshold: %v", hi)
	}
}

func TestExpectedFloat(t *testing.T) {
	s := NewStore()
	s.Assert(Fact{Entity: "m", Attribute: "temp", Value: "60", Conf: 0.8})
	s.Assert(Fact{Entity: "m", Attribute: "temp", Value: "70", Conf: 0.2})
	key := (&Fact{Entity: "m", Attribute: "temp"}).Key()
	got, ok := s.ExpectedFloat(key, func(v string) (float64, error) {
		return strconv.ParseFloat(v, 64)
	})
	if !ok || got != 62 {
		t.Fatalf("expected value = %v ok=%v", got, ok)
	}
	// Unparseable values are skipped.
	s.Assert(Fact{Entity: "m", Attribute: "temp", Value: "unknown", Conf: 0.9})
	got, ok = s.ExpectedFloat(key, func(v string) (float64, error) {
		return strconv.ParseFloat(v, 64)
	})
	if !ok || got != 62 {
		t.Fatalf("with junk value: %v ok=%v", got, ok)
	}
	if _, ok := s.ExpectedFloat("missing", strconvParse); ok {
		t.Fatal("missing key should not produce expectation")
	}
}

func strconvParse(v string) (float64, error) { return strconv.ParseFloat(v, 64) }

func TestEntropyPrioritizesAmbiguity(t *testing.T) {
	s := NewStore()
	s.Assert(Fact{Entity: "sure", Attribute: "a", Value: "v", Conf: 0.99})
	s.Assert(Fact{Entity: "torn", Attribute: "a", Value: "v1", Conf: 0.5})
	s.Assert(Fact{Entity: "torn", Attribute: "a", Value: "v2", Conf: 0.5})
	sureKey := (&Fact{Entity: "sure", Attribute: "a"}).Key()
	tornKey := (&Fact{Entity: "torn", Attribute: "a"}).Key()
	if s.Entropy(tornKey) <= s.Entropy(sureKey) {
		t.Fatalf("entropy(torn)=%v should exceed entropy(sure)=%v",
			s.Entropy(tornKey), s.Entropy(sureKey))
	}
	if h := s.Entropy(tornKey); math.Abs(h-1.0) > 1e-9 {
		t.Fatalf("50/50 entropy = %v, want 1 bit", h)
	}
	if s.Entropy("missing") != 0 {
		t.Fatal("missing key entropy should be 0")
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	s.Assert(Fact{Entity: "b", Attribute: "x", Value: "1", Conf: 0.5})
	s.Assert(Fact{Entity: "a", Attribute: "x", Value: "1", Conf: 0.5})
	keys := s.Keys()
	if len(keys) != 2 || keys[0] > keys[1] {
		t.Fatalf("keys: %v", keys)
	}
}
