package shard

import (
	"context"
	"errors"
	"sync"

	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/search"
)

// ShardedView is the cross-shard snapshot handle: one pinned MVCC view
// per healthy shard (a vector of LSNs), nil where a shard is down.
// Every read on the view serves all shards at their pinned LSNs, so a
// multi-statement exploration sees each shard frozen at one point in
// time. Shards that were down at open time are gaps: reads that need
// them return partial results with a *DegradedError.
type ShardedView struct {
	ss    *ShardedSystem
	views []*core.View // index = shard; nil = gap
	down  []int        // shards with no view, ascending
	once  sync.Once
}

// View opens the vector snapshot. At least one shard must be healthy;
// with none, core.ErrClosed is returned (the sharded system is
// effectively closed).
func (ss *ShardedSystem) View(ctx context.Context) (*ShardedView, error) {
	sv := &ShardedView{ss: ss, views: make([]*core.View, len(ss.shards))}
	healthy := map[int]bool{}
	for _, i := range ss.healthy() {
		healthy[i] = true
	}
	opened := 0
	for i := range ss.shards {
		if !healthy[i] {
			sv.down = append(sv.down, i)
			continue
		}
		v, err := ss.shards[i].View(ctx)
		if err != nil {
			if isGap(err) {
				ss.markDown(i)
				sv.down = append(sv.down, i)
				continue
			}
			sv.Close()
			return nil, err
		}
		sv.views[i] = v
		opened++
	}
	if opened == 0 {
		return nil, core.ErrClosed
	}
	return sv, nil
}

// Close releases every pinned per-shard view. Idempotent.
func (sv *ShardedView) Close() {
	sv.once.Do(func() {
		for _, v := range sv.views {
			if v != nil {
				v.Close()
			}
		}
	})
}

// LSNs returns the snapshot vector: one LSN per shard, zero where the
// shard is a gap.
func (sv *ShardedView) LSNs() []rdbms.LSN {
	out := make([]rdbms.LSN, len(sv.views))
	for i, v := range sv.views {
		if v != nil {
			out[i] = v.LSN()
		}
	}
	return out
}

// gapError returns the degraded marker for this view's missing shards
// (nil when every shard answered).
func (sv *ShardedView) gapError(extra []int) *DegradedError {
	down := append(append([]int{}, sv.down...), extra...)
	return sv.ss.degraded(down)
}

// degradedOrNil converts the *DegradedError to a plain error interface
// without the classic non-nil-interface-around-nil-pointer trap.
func degradedOrNil(de *DegradedError) error {
	if de == nil {
		return nil
	}
	return de
}

// KeywordSearch serves from the lowest-index live view: the document
// index is replicated, so one shard's answer is the complete answer.
func (sv *ShardedView) KeywordSearch(query string, k int) ([]search.Hit, error) {
	for i, v := range sv.views {
		if v == nil {
			continue
		}
		hits, err := v.KeywordSearch(query, k)
		if err != nil {
			if isGap(err) {
				sv.ss.markDown(i)
				continue
			}
			return nil, err
		}
		return hits, nil
	}
	return nil, core.ErrClosed
}

// AskGuided reformulates against the merged catalog and executes the
// top candidate's SQL across the shard snapshots, averaging coverage
// over the shards that answered. Candidates are identical to a single
// engine's over the same rows (ranking is insertion-order independent).
func (sv *ShardedView) AskGuided(query string, k int) (*core.GuidedAnswer, error) {
	_, reform, catDown, err := sv.ss.shardedCatalog(context.Background())
	if err != nil {
		return nil, err
	}
	cands := reform.Candidates(query, k)
	out := &core.GuidedAnswer{Candidates: cands}
	if len(cands) == 0 {
		return out, degradedOrNil(sv.gapError(catDown))
	}
	top := cands[0]
	rs, err := sv.SQL(top.SQL)
	var de *DegradedError
	if err != nil && !errors.As(err, &de) {
		return nil, err
	}
	out.Answer = rs
	cov, n := 0.0, 0
	for i, v := range sv.views {
		if v == nil {
			continue
		}
		cov += sv.ss.shards[i].Coverage(top.Attribute)
		n++
	}
	if n > 0 {
		out.Coverage = cov / float64(n)
	}
	return out, degradedOrNil(sv.gapError(catDown))
}

// SQL executes a read statement across the shard snapshots; see the
// package doc for the routing and merge contract.
func (sv *ShardedView) SQL(query string) (*rdbms.ResultSet, error) {
	return execSharded(sv.ss, query, len(sv.views), func(i int, q string) (*rdbms.ResultSet, error) {
		if sv.views[i] == nil {
			return nil, core.ErrClosed
		}
		return sv.views[i].SQL(q)
	})
}

// Browse merges every live shard's snapshot scan on ascending entity —
// reconstructing the single-engine scan order, since the ingest stream
// is entity-sorted and entities never span shards — and builds one
// faceted browser over the union.
func (sv *ShardedView) Browse() (*browse.Browser, error) {
	var streams [][]browse.Row
	var extra []int
	for i, v := range sv.views {
		if v == nil {
			continue
		}
		b, err := v.Browse()
		if err != nil {
			if isGap(err) {
				sv.ss.markDown(i)
				extra = append(extra, i)
				continue
			}
			return nil, err
		}
		streams = append(streams, b.Rows())
	}
	if len(streams) == 0 {
		return nil, core.ErrClosed
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	all := make([]browse.Row, 0, total)
	cursors := make([]int, len(streams))
	for {
		best := -1
		for i, s := range streams {
			if cursors[i] >= len(s) {
				continue
			}
			if best < 0 || s[cursors[i]].Entity < streams[best][cursors[best]].Entity {
				best = i
			}
		}
		if best < 0 {
			break
		}
		all = append(all, streams[best][cursors[best]])
		cursors[best]++
	}
	return browse.New(all), degradedOrNil(sv.gapError(extra))
}

// ExplainFact routes to the owning shard's view; a gap there is a
// degraded miss.
func (sv *ShardedView) ExplainFact(entity, attribute, qualifier string) (string, error) {
	owner := sv.ss.Owner(entity)
	v := sv.views[owner]
	if v == nil {
		return "", sv.ss.degraded([]int{owner})
	}
	out, err := v.ExplainFact(entity, attribute, qualifier)
	if err != nil && isGap(err) {
		sv.ss.markDown(owner)
		return "", sv.ss.degraded([]int{owner})
	}
	return out, err
}
