// Package shard scales the dataspace out horizontally: one logical
// system served by N independent engine roots (PR9). The extracted
// table is partitioned by entity hash — the same FNV-64a shuffle the
// MapReduce extraction uses (cluster.Partition), so a row reduces into
// partition p and lives on shard p`mod`N with entity-contiguous runs
// intact. The corpus and its keyword index are replicated to every
// shard (they are read-only after build and cheap relative to the
// structured store), so keyword search is served by any one healthy
// shard while structured reads fan out to all of them and merge.
//
// Serving contract:
//
//   - Entity-routed reads (WHERE entity = '...', corrections, fact
//     lineage) go to the single owning shard and behave exactly like a
//     single engine.
//   - ORDER BY SELECTs push the sort and a tightened LIMIT down to
//     every shard and k-way merge the already-sorted streams. When the
//     sort keys include the partition column (entity), cross-shard key
//     ties are impossible — equal entities live on one shard — so the
//     merged stream is byte-identical to a single engine's, including
//     tie order, LIMIT and OFFSET. For orderings that exclude entity,
//     cross-shard ties break by shard index (same multiset, order may
//     differ from a single engine's scan order).
//   - Aggregates recombine exactly from per-shard partials (COUNT sums;
//     SUM/MIN/MAX merge mirroring the engine's aggState; AVG from
//     per-shard SUM+COUNT). GROUP BY merges groups by key; merged
//     groups emerge sorted by group key rather than in single-engine
//     first-seen scan order. HAVING and cross-shard JOINs are refused
//     with typed errors.
//   - Unordered plain SELECTs and DISTINCT over the extracted table
//     merge per-shard streams on ascending entity. The bulk-ingest
//     stream is globally entity-sorted (the cluster sorts its reduce
//     output by key) and one entity never spans shards, so the merge
//     reconstructs the single-engine scan stream byte-exactly for
//     ingest-built tables; after in-place corrections it remains
//     deterministic. Unordered reads of other (replicated/auxiliary)
//     tables concatenate shard-major.
//   - Writes through SQL are refused: a sharded front end is the
//     serving tier; data arrives through BulkIngest (extract once,
//     route partitions to owners) and mutates through CorrectValue.
//
// Snapshot semantics: a ShardedView pins one MVCC snapshot per shard (a
// vector of LSNs). There is no global transaction order across engines,
// so the vector is the sharded analogue of a single LSN: each shard's
// component is internally consistent, and cross-shard skew is bounded
// by the moment the view opened.
//
// Shard loss degrades, it does not fail: fan-outs treat a closed shard
// (core.ErrClosed) as a gap, serve what the healthy shards return, and
// attach a *DegradedError naming the missing shards — partial results
// with provenance-marked gaps, while healthy shards keep serving inside
// their admission-control bounds.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/alert"
	"repro/internal/browse"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/reformulate"
	"repro/internal/search"
	"repro/internal/uql"
)

// ErrReadOnly is returned for SQL statements that would mutate data:
// the sharded tier serves reads; writes go through BulkIngest and
// CorrectValue.
var ErrReadOnly = errors.New("shard: sharded SQL serving is read-only (ingest and corrections mutate)")

// ErrUnsupported is returned for SELECT shapes that cannot be merged
// exactly across shards (cross-shard JOIN, HAVING, aggregate
// arithmetic). Entity-routed queries support every shape.
var ErrUnsupported = errors.New("shard: unsupported cross-shard query shape")

// DegradedError reports that one or more shards could not serve. It is
// returned ALONGSIDE a non-nil partial result when healthy shards
// produced one (callers that care about completeness must check the
// error; callers that prefer availability use the result), and alone
// when no shard could serve.
type DegradedError struct {
	Down   []int // shard indexes that did not answer
	Shards int   // total shards in the layout
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard: %d/%d shards unavailable (down: %v); results are partial", len(e.Down), e.Shards, e.Down)
}

// Config describes a sharded layout.
type Config struct {
	// Shards is the number of engine roots; <= 0 means 1.
	Shards int
	// Dir, when set, is the layout root: shard i opens (and persists)
	// under Dir/shard-i via core.OpenDir, and a manifest pins the shard
	// count — reopening with a different count is refused, since rows
	// would be on the wrong shards. Empty Dir runs every shard in
	// memory.
	Dir string
	// System is the per-shard system template (corpus, workers, crowd).
	// Its Dir field is ignored; the layout Dir governs placement.
	System core.Config
}

type manifest struct {
	Shards int `json:"shards"`
}

// ShardCountMismatchError is the typed refusal for reopening a durable
// layout with a different shard count than its manifest pins: rows were
// placed by entity hash mod the pinned count, so serving under another
// count would silently route reads to the wrong shards. Callers (the
// daemon's startup path, operators' tooling) detect it with errors.As
// and report "reshard requires re-ingest" instead of a generic open
// failure.
type ShardCountMismatchError struct {
	Dir    string // layout root holding the manifest
	Pinned int    // shard count the layout was ingested with
	Asked  int    // shard count this open requested
}

func (e *ShardCountMismatchError) Error() string {
	return fmt.Sprintf("shard: layout %s has %d shards, asked for %d (reshard requires re-ingest)",
		e.Dir, e.Pinned, e.Asked)
}

// ShardedSystem is N core.Systems behind the single-system serving
// surface (it satisfies the server's Backend interface).
type ShardedSystem struct {
	shards []*core.System
	dir    string

	mu     sync.Mutex
	down   []bool
	closed bool

	// Merged-reformulator memo, keyed by the healthy shards' catalog
	// epochs (see shardedCatalog).
	catMu     sync.Mutex
	catKey    string
	catReform *reformulate.Reformulator
	catMerged reformulate.Catalog
}

// Open builds the sharded layout. With cfg.Dir set, each shard opens
// durable under its own subdirectory (warm-starting when it was opened
// before); otherwise every shard is in-memory. Shards are empty on
// first open — populate with BulkIngest.
func Open(cfg Config) (*ShardedSystem, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		mpath := filepath.Join(cfg.Dir, "shards.json")
		if raw, err := os.ReadFile(mpath); err == nil {
			var m manifest
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, fmt.Errorf("shard: bad manifest %s: %w", mpath, err)
			}
			if m.Shards != n {
				return nil, &ShardCountMismatchError{Dir: cfg.Dir, Pinned: m.Shards, Asked: n}
			}
		} else {
			raw, _ := json.Marshal(manifest{Shards: n})
			if err := os.WriteFile(mpath, raw, 0o644); err != nil {
				return nil, fmt.Errorf("shard: %w", err)
			}
		}
	}
	ss := &ShardedSystem{dir: cfg.Dir, down: make([]bool, n)}
	for i := 0; i < n; i++ {
		sysCfg := cfg.System
		sysCfg.Dir = ""
		var (
			s   *core.System
			err error
		)
		if cfg.Dir != "" {
			s, _, err = core.OpenDir(filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", i)), sysCfg, nil)
		} else {
			s, err = core.New(sysCfg)
		}
		if err != nil {
			for _, prev := range ss.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shard: opening shard %d: %w", i, err)
		}
		ss.shards = append(ss.shards, s)
	}
	return ss, nil
}

// Shards returns the layout width.
func (ss *ShardedSystem) Shards() int { return len(ss.shards) }

// Owner returns the shard index owning an entity's rows.
func (ss *ShardedSystem) Owner(entity string) int {
	return cluster.Partition(entity, len(ss.shards))
}

// Shard exposes one underlying system (tests and diagnostics).
func (ss *ShardedSystem) Shard(i int) *core.System { return ss.shards[i] }

// DownShards returns the indexes currently marked down, ascending.
func (ss *ShardedSystem) DownShards() []int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []int
	for i, d := range ss.down {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// KillShard closes one shard's engine in place — the fault-injection
// hook behind the shard-loss tests. Like core.Close it drains that
// shard's in-flight operations; new fan-outs skip the shard immediately
// and serve degraded. Idempotent.
func (ss *ShardedSystem) KillShard(i int) error {
	if i < 0 || i >= len(ss.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	ss.mu.Lock()
	if ss.down[i] {
		ss.mu.Unlock()
		return nil
	}
	ss.down[i] = true
	ss.mu.Unlock()
	return ss.shards[i].Close()
}

// healthy returns the indexes not marked down.
func (ss *ShardedSystem) healthy() []int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]int, 0, len(ss.shards))
	for i, d := range ss.down {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// markDown records a shard discovered dead mid-operation (its engine
// returned ErrClosed without KillShard being called — e.g. an external
// Close). Keeps the down set truthful for health reporting.
func (ss *ShardedSystem) markDown(i int) {
	ss.mu.Lock()
	ss.down[i] = true
	ss.mu.Unlock()
}

// isGap reports whether a per-shard error means "shard lost" (serve
// degraded) rather than a real query failure.
func isGap(err error) bool {
	return errors.Is(err, core.ErrClosed)
}

// degraded builds the typed gap error for the given down set; nil when
// nothing is missing.
func (ss *ShardedSystem) degraded(down []int) *DegradedError {
	if len(down) == 0 {
		return nil
	}
	sort.Ints(down)
	return &DegradedError{Down: down, Shards: len(ss.shards)}
}

// Close closes every shard (idempotent; concurrent-safe per shard).
func (ss *ShardedSystem) Close() error {
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
	var firstErr error
	for _, s := range ss.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Closing reports whether Close has begun (Backend surface).
func (ss *ShardedSystem) Closing() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return true
	}
	for _, d := range ss.down {
		if !d {
			return false
		}
	}
	return true // every shard lost: nothing can serve
}

// InFlightOps sums in-flight operations across healthy shards.
func (ss *ShardedSystem) InFlightOps() int {
	total := 0
	for _, i := range ss.healthy() {
		total += ss.shards[i].InFlightOps()
	}
	return total
}

// ExtractedRows sums the extracted-table row counts across healthy
// shards. With shards down the sum is partial — health reporting pairs
// it with the down count.
func (ss *ShardedSystem) ExtractedRows() (int, error) {
	total := 0
	served := 0
	var down []int
	for _, i := range ss.healthy() {
		n, err := ss.shards[i].ExtractedRows()
		if err != nil {
			if isGap(err) {
				ss.markDown(i)
				down = append(down, i)
				continue
			}
			return 0, err
		}
		total += n
		served++
	}
	if served == 0 {
		return 0, core.ErrClosed
	}
	_ = down
	return total, nil
}

// EngineStats sums engine health counters across healthy shards.
func (ss *ShardedSystem) EngineStats() core.EngineStats {
	var agg core.EngineStats
	for _, i := range ss.healthy() {
		es := ss.shards[i].EngineStats()
		agg.Checkpoints += es.Checkpoints
		agg.WALSyncs += es.WALSyncs
		agg.IndexesLoaded += es.IndexesLoaded
		agg.IndexesRebuilt += es.IndexesRebuilt
		agg.BufferHits += es.BufferHits
		agg.BufferMisses += es.BufferMisses
		agg.BufferEvictions += es.BufferEvictions
		agg.BufferScanBypass += es.BufferScanBypass
		agg.BufferCapacity += es.BufferCapacity
		agg.BufferResident += es.BufferResident
	}
	return agg
}

// --- Ingest ---------------------------------------------------------------

// BulkIngest extracts the corpus ONCE (on the lowest healthy shard's
// cluster — every shard holds the full corpus) and routes each row to
// its owning shard by entity hash, loading all owners in parallel
// through the COPY-style batch path. The global extraction stream is
// identical to a single engine's for the same partition count, and each
// shard receives an order-preserved subsequence of it — the property
// the equivalence oracle checks. Ingest requires every shard healthy:
// loading around a dead owner would silently lose its partition.
func (ss *ShardedSystem) BulkIngest(ctx context.Context, extractor string, partitions int) (*core.BulkIngestReport, error) {
	if down := ss.DownShards(); len(down) > 0 {
		return nil, fmt.Errorf("shard: cannot ingest with shards down %v: %w", down, core.ErrClosed)
	}
	// The shuffle width only controls cluster parallelism: the extraction
	// stream is globally entity-sorted regardless of width, so every
	// read path is byte-identical to a single engine for any choice.
	// Default to the shard count as a sensible parallelism floor.
	if partitions <= 0 {
		partitions = len(ss.shards)
	}
	start := time.Now()
	rows, es, err := ss.shards[0].ExtractAll(ctx, extractor, partitions)
	if err != nil {
		return nil, err
	}
	n := len(ss.shards)
	parts := make([][]uql.Row, n)
	for _, r := range rows {
		p := cluster.Partition(r.Entity, n)
		parts[p] = append(parts[p], r)
	}
	reports := make([]*core.BulkIngestReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = ss.shards[i].BulkLoadRows(ctx, parts[i])
		}(i)
	}
	wg.Wait()
	merged := &core.BulkIngestReport{
		Docs:       es.Docs,
		Partitions: es.Partitions,
		Workers:    es.Workers,
		Deferred:   true,
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		merged.Rows += r.Rows
		merged.Batches += r.Batches
		if !r.Deferred {
			merged.Deferred = false
		}
	}
	for _, e := range errs {
		if e != nil {
			return merged, e
		}
	}
	merged.Elapsed = time.Since(start)
	return merged, nil
}

// --- Merged catalog -------------------------------------------------------

// shardedCatalog merges the healthy shards' catalogs (entity and
// attribute unions, sorted; qualifier vocabularies merged shard-major
// first-seen) and memoizes one reformulator over the merge, keyed by
// the shards' catalog epochs. Candidate ranking is insertion-order
// independent (reformulate's documented contract: ties break by name,
// never catalog position), so the merged reformulator answers exactly
// like a single engine's for the same underlying rows; only qualifier
// RANGE rendering follows vocabulary order, which is identical when
// shards observe qualifiers in the same canonical order (months do).
func (ss *ShardedSystem) shardedCatalog(ctx context.Context) (reformulate.Catalog, *reformulate.Reformulator, []int, error) {
	healthy := ss.healthy()
	var down []int
	type part struct {
		idx int
		cat reformulate.Catalog
	}
	var parts []part
	var key strings.Builder
	for _, i := range healthy {
		cat, err := ss.shards[i].Catalog(ctx)
		if err != nil {
			if isGap(err) {
				ss.markDown(i)
				down = append(down, i)
				continue
			}
			return reformulate.Catalog{}, nil, nil, err
		}
		fmt.Fprintf(&key, "%d:%d;", i, ss.shards[i].WarmEpoch())
		parts = append(parts, part{idx: i, cat: cat})
	}
	if len(parts) == 0 {
		return reformulate.Catalog{}, nil, down, core.ErrClosed
	}

	ss.catMu.Lock()
	defer ss.catMu.Unlock()
	if ss.catReform != nil && ss.catKey == key.String() {
		return ss.catMerged, ss.catReform, down, nil
	}
	merged := reformulate.Catalog{Table: core.TableName, Qualifiers: map[string][]string{}}
	entSeen := map[string]bool{}
	attrSeen := map[string]bool{}
	qualSeen := map[string]map[string]bool{}
	for _, p := range parts {
		for _, e := range p.cat.Entities {
			if !entSeen[e] {
				entSeen[e] = true
				merged.Entities = append(merged.Entities, e)
			}
		}
		for _, a := range p.cat.Attributes {
			if !attrSeen[a] {
				attrSeen[a] = true
				merged.Attributes = append(merged.Attributes, a)
			}
		}
		for attr, quals := range p.cat.Qualifiers {
			qs := qualSeen[attr]
			if qs == nil {
				qs = map[string]bool{}
				qualSeen[attr] = qs
			}
			for _, q := range quals {
				if !qs[q] {
					qs[q] = true
					merged.Qualifiers[attr] = append(merged.Qualifiers[attr], q)
				}
			}
		}
	}
	sort.Strings(merged.Entities)
	sort.Strings(merged.Attributes)
	ss.catKey = key.String()
	ss.catMerged = merged
	ss.catReform = reformulate.New(merged)
	return merged, ss.catReform, down, nil
}

// Catalog returns the merged catalog (Backend-compatible diagnostics).
func (ss *ShardedSystem) Catalog(ctx context.Context) (reformulate.Catalog, error) {
	cat, _, down, err := ss.shardedCatalog(ctx)
	if err != nil {
		return cat, err
	}
	if de := ss.degraded(down); de != nil {
		return cat, de
	}
	return cat, nil
}

// --- One-shot serving surface (Backend) -----------------------------------

// KeywordSearch serves from the lowest healthy shard: the document
// index is replicated, so any one shard answers identically, and shard
// loss just moves to the next replica (no degradation marker — the
// answer is complete).
func (ss *ShardedSystem) KeywordSearch(ctx context.Context, query string, k int) ([]search.Hit, error) {
	for _, i := range ss.healthy() {
		hits, err := ss.shards[i].KeywordSearch(ctx, query, k)
		if err != nil {
			if isGap(err) {
				ss.markDown(i)
				continue
			}
			return nil, err
		}
		return hits, nil
	}
	return nil, core.ErrClosed
}

// AskGuided mirrors the single-engine flow over the merged catalog:
// reformulate the keyword query, execute the top candidate's SQL across
// the shards, average coverage over healthy shards, and boost demand on
// every healthy shard so extraction effort follows the workload.
func (ss *ShardedSystem) AskGuided(ctx context.Context, query string, k int) (*core.GuidedAnswer, error) {
	sv, err := ss.View(ctx)
	if err != nil {
		return nil, err
	}
	defer sv.Close()
	out, err := sv.AskGuided(query, k)
	var de *DegradedError
	if err != nil && !errors.As(err, &de) {
		return nil, err
	}
	if out != nil && len(out.Candidates) > 0 {
		for _, i := range ss.healthy() {
			if derr := ss.shards[i].Demand(ctx, out.Candidates[0].Attribute, 1); derr != nil && !isGap(derr) {
				return nil, derr
			}
		}
	}
	return out, err
}

// SQL serves read statements across the shards (see package doc for the
// merge contract); mutations are refused with ErrReadOnly.
func (ss *ShardedSystem) SQL(ctx context.Context, query string) (*rdbms.ResultSet, error) {
	sv, err := ss.View(ctx)
	if err != nil {
		return nil, err
	}
	defer sv.Close()
	return sv.SQL(query)
}

// Browse builds the faceted browser over every healthy shard's snapshot
// scan, entity-merged back into the single-engine scan order (facet
// counts are order-independent either way).
func (ss *ShardedSystem) Browse(ctx context.Context) (*browse.Browser, error) {
	sv, err := ss.View(ctx)
	if err != nil {
		return nil, err
	}
	defer sv.Close()
	return sv.Browse()
}

// Subscribe fans the standing query to every healthy shard — an alert
// fires on whichever shard owns the entity a future correction touches.
// Because every subscription fans out, healthy shards assign aligned
// IDs; the common ID is returned.
func (ss *ShardedSystem) Subscribe(sub alert.Subscription) (int, error) {
	id := -1
	served := false
	for _, i := range ss.healthy() {
		sid, err := ss.shards[i].Subscribe(sub)
		if err != nil {
			if isGap(err) {
				ss.markDown(i)
				continue
			}
			return 0, err
		}
		if !served {
			id = sid
			served = true
		}
	}
	if !served {
		return 0, core.ErrClosed
	}
	return id, nil
}

// CorrectValue routes the correction to the shard owning the entity.
func (ss *ShardedSystem) CorrectValue(ctx context.Context, user, entity, attribute, qualifier, newValue string) error {
	owner := ss.Owner(entity)
	err := ss.shards[owner].CorrectValue(ctx, user, entity, attribute, qualifier, newValue)
	if err != nil && isGap(err) {
		ss.markDown(owner)
		return ss.degraded([]int{owner})
	}
	return err
}

// ExplainFact routes lineage rendering to the shard owning the entity.
func (ss *ShardedSystem) ExplainFact(ctx context.Context, entity, attribute, qualifier string) (string, error) {
	owner := ss.Owner(entity)
	out, err := ss.shards[owner].ExplainFact(ctx, entity, attribute, qualifier)
	if err != nil && isGap(err) {
		ss.markDown(owner)
		return "", ss.degraded([]int{owner})
	}
	return out, err
}
