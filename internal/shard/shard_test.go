package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/synth"
)

// sampleFacts returns up to n real (entity, qualifier) pairs for the
// attribute, so correction tests mutate rows that actually exist.
func sampleFacts(t *testing.T, ss *ShardedSystem, attribute string, n int) [][2]string {
	t.Helper()
	rs, err := ss.SQL(context.Background(),
		fmt.Sprintf("SELECT entity, qualifier FROM extracted WHERE attribute = '%s' ORDER BY entity, qualifier LIMIT %d", attribute, n))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][2]string, 0, len(rs.Rows))
	for _, row := range rs.Rows {
		out = append(out, [2]string{row[0].S, row[1].S})
	}
	if len(out) == 0 {
		t.Fatalf("no %s facts to sample", attribute)
	}
	return out
}

// newCorpusConfig builds the shared synthetic corpus every oracle run
// uses: the single reference engine and every sharded layout see the
// same documents.
func newCorpusConfig(t *testing.T) core.Config {
	t.Helper()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: 60, People: 12, Filler: 20, MentionsPerPerson: 2,
	})
	return core.Config{Corpus: corpus, Workers: 4}
}

// newSingle builds the single-engine reference, bulk-ingested with the
// given extraction width.
func newSingle(t *testing.T, cfg core.Config, partitions int) *core.System {
	t.Helper()
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := sys.BulkIngest(context.Background(), "city", partitions); err != nil {
		t.Fatal(err)
	}
	return sys
}

// newSharded builds an in-memory N-shard layout over the same corpus,
// bulk-ingested with the same extraction width.
func newSharded(t *testing.T, cfg core.Config, n, partitions int) *ShardedSystem {
	t.Helper()
	ss, err := Open(Config{Shards: n, System: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	if _, err := ss.BulkIngest(context.Background(), "city", partitions); err != nil {
		t.Fatal(err)
	}
	return ss
}

func mustSQL(t *testing.T, q string, f func(string) (*rdbms.ResultSet, error)) *rdbms.ResultSet {
	t.Helper()
	rs, err := f(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rs
}

// renderRows flattens a result set the way the wire layer does, so a
// comparison is a true byte-identity check on what clients see.
func renderRows(rs *rdbms.ResultSet) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(rs.Columns, "|"))
	sb.WriteByte('\n')
	for _, row := range rs.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestShardedSelectEquivalenceOracle: for 1-, 2-, and 4-shard layouts,
// ORDER BY SELECT streams (keys including the partition column, so tie
// order is pinned), entity-routed statements, and LIMIT/OFFSET slices
// must be byte-identical to a single engine over the same corpus.
// Unordered and aggregate reads ride along: the entity merge
// reconstructs the single-engine scan stream for ingest-built tables.
func TestShardedSelectEquivalenceOracle(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			single := newSingle(t, cfg, n)
			sharded := newSharded(t, cfg, n, n)

			queries := []string{
				// Ordered streams with entity among the keys: ties on the
				// leading keys cross shards, full-key ties cannot.
				"SELECT entity, attribute, qualifier, value FROM extracted ORDER BY entity, attribute, qualifier",
				"SELECT entity, attribute, value FROM extracted ORDER BY attribute, entity, qualifier LIMIT 23",
				"SELECT entity, num FROM extracted WHERE attribute = 'temperature' ORDER BY num DESC, entity, qualifier LIMIT 11 OFFSET 4",
				"SELECT entity FROM extracted WHERE num > 40 ORDER BY entity DESC LIMIT 9",
				"SELECT entity, value AS v FROM extracted ORDER BY v, entity LIMIT 15",
				"SELECT * FROM extracted ORDER BY entity, attribute, qualifier, value LIMIT 31 OFFSET 7",
				"SELECT entity, qualifier FROM extracted ORDER BY entity LIMIT 0",
				"SELECT entity FROM extracted ORDER BY entity OFFSET 100000",
				// Entity-routed: every feature allowed, verbatim on one shard.
				"SELECT value, conf FROM extracted WHERE entity = 'Madison, Wisconsin' AND attribute = 'temperature' ORDER BY qualifier",
				"SELECT COUNT(*), AVG(num) FROM extracted WHERE entity = 'Madison, Wisconsin'",
				"SELECT attribute, COUNT(*) AS n FROM extracted WHERE entity = 'Madison, Wisconsin' GROUP BY attribute HAVING COUNT(*) > 0 ORDER BY n DESC, attribute",
				// Aggregate recombination (exact: COUNT/MIN/MAX; SUM over ints).
				"SELECT COUNT(*) FROM extracted",
				"SELECT COUNT(*) FROM extracted WHERE attribute = 'population'",
				"SELECT MIN(num), MAX(num) FROM extracted WHERE attribute = 'temperature'",
				"SELECT entity, COUNT(*) AS n FROM extracted GROUP BY entity ORDER BY entity",
				"SELECT attribute, COUNT(*) AS n FROM extracted GROUP BY attribute ORDER BY attribute LIMIT 2 OFFSET 1",
				// DISTINCT with and without ORDER BY over output columns.
				"SELECT DISTINCT attribute FROM extracted ORDER BY attribute",
				"SELECT DISTINCT entity, attribute FROM extracted ORDER BY entity, attribute LIMIT 19 OFFSET 3",
				// Unordered reads: byte-identical under width alignment.
				"SELECT entity, attribute, qualifier, value FROM extracted",
				"SELECT entity, value FROM extracted WHERE attribute = 'temperature' LIMIT 25",
				"SELECT DISTINCT attribute FROM extracted",
			}
			for _, q := range queries {
				want := mustSQL(t, q, func(q string) (*rdbms.ResultSet, error) { return single.SQL(ctx, q) })
				got := mustSQL(t, q, func(q string) (*rdbms.ResultSet, error) { return sharded.SQL(ctx, q) })
				if renderRows(want) != renderRows(got) {
					t.Errorf("diverged on %q:\nsingle:\n%s\nsharded:\n%s", q, renderRows(want), renderRows(got))
				}
			}
		})
	}
}

// TestShardedOrderedMergeUnalignedWidth: reads stay byte-identical even
// when the extraction shuffle width does not match the shard count (the
// extraction stream is entity-sorted for any width, so the merges never
// depended on alignment).
func TestShardedOrderedMergeUnalignedWidth(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	single := newSingle(t, cfg, 8)
	sharded := newSharded(t, cfg, 2, 8)
	queries := []string{
		"SELECT entity, attribute, qualifier, value FROM extracted ORDER BY entity, attribute, qualifier",
		"SELECT entity, num FROM extracted WHERE attribute = 'population' ORDER BY num DESC, entity LIMIT 13 OFFSET 2",
		"SELECT COUNT(*) FROM extracted",
	}
	for _, q := range queries {
		want := mustSQL(t, q, func(q string) (*rdbms.ResultSet, error) { return single.SQL(ctx, q) })
		got := mustSQL(t, q, func(q string) (*rdbms.ResultSet, error) { return sharded.SQL(ctx, q) })
		if renderRows(want) != renderRows(got) {
			t.Errorf("diverged on %q:\nsingle:\n%s\nsharded:\n%s", q, renderRows(want), renderRows(got))
		}
	}
}

// TestShardedGuidedAndSearchEquivalence: the guided flow (candidates,
// answer, coverage) and keyword search must be byte-identical to a
// single engine for 1-, 2-, and 4-shard layouts.
func TestShardedGuidedAndSearchEquivalence(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		single := newSingle(t, cfg, n)
		sharded := newSharded(t, cfg, n, n)
		for _, q := range []string{
			"madison temperature",
			"temperature in march",
			"population",
			"founded madison",
		} {
			want, err := single.AskGuided(ctx, q, 3)
			if err != nil {
				t.Fatalf("single ask %q: %v", q, err)
			}
			got, err := sharded.AskGuided(ctx, q, 3)
			if err != nil {
				t.Fatalf("sharded ask %q: %v", q, err)
			}
			if !reflect.DeepEqual(want.Candidates, got.Candidates) {
				t.Errorf("shards=%d query %q: candidates diverged\nsingle:  %+v\nsharded: %+v", n, q, want.Candidates, got.Candidates)
			}
			if (want.Answer == nil) != (got.Answer == nil) {
				t.Fatalf("shards=%d query %q: answer presence diverged", n, q)
			}
			if want.Answer != nil && renderRows(want.Answer) != renderRows(got.Answer) {
				t.Errorf("shards=%d query %q: answers diverged\nsingle:\n%s\nsharded:\n%s", n, q, renderRows(want.Answer), renderRows(got.Answer))
			}
			if want.Coverage != got.Coverage {
				t.Errorf("shards=%d query %q: coverage %v vs %v", n, q, want.Coverage, got.Coverage)
			}
		}
		for _, q := range []string{"madison", "temperature", "university"} {
			want, err := single.KeywordSearch(ctx, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.KeywordSearch(ctx, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("shards=%d search %q diverged: %+v vs %+v", n, q, want, got)
			}
		}
	}
}

// TestShardedBrowseEquivalence: the entity-merged browse stream — rows
// and facets — must match a single engine exactly.
func TestShardedBrowseEquivalence(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	single := newSingle(t, cfg, 2)
	sharded := newSharded(t, cfg, 2, 2)
	want, err := single.Browse(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Browse(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Facets(), got.Facets()) {
		t.Errorf("facets diverged:\nsingle:  %+v\nsharded: %+v", want.Facets(), got.Facets())
	}
	if !reflect.DeepEqual(want.Rows(), got.Rows()) {
		t.Errorf("browse rows diverged (%d vs %d rows)", len(want.Rows()), len(got.Rows()))
	}
}

// TestShardedViewVectorSnapshot: a ShardedView pins one snapshot per
// shard; corrections landing after the view opened stay invisible to
// it, and the LSN vector has one component per shard.
func TestShardedViewVectorSnapshot(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	ss := newSharded(t, cfg, 4, 4)

	sv, err := ss.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	if got := len(sv.LSNs()); got != 4 {
		t.Fatalf("LSN vector length %d, want 4", got)
	}
	const q = "SELECT entity, qualifier, value FROM extracted WHERE attribute = 'temperature' ORDER BY entity, qualifier"
	before, err := sv.SQL(q)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate real facts through the sharded write path (entity hash
	// spreads the corrections over shards).
	facts := sampleFacts(t, ss, "temperature", 6)
	for _, f := range facts {
		if err := ss.CorrectValue(ctx, "auditor", f[0], "temperature", f[1], "-273"); err != nil {
			t.Fatalf("correct %s/%s: %v", f[0], f[1], err)
		}
	}

	after, err := sv.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(before) != renderRows(after) {
		t.Fatal("pinned view saw corrections: not a repeatable vector snapshot")
	}
	// A fresh read outside the view sees the corrections' world.
	fresh, err := ss.SQL(ctx, fmt.Sprintf(
		"SELECT value FROM extracted WHERE entity = '%s' AND attribute = 'temperature' AND qualifier = '%s'",
		strings.ReplaceAll(facts[0][0], "'", "''"), facts[0][1]))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range fresh.Rows {
		if row[0].S == "-273" {
			found = true
		}
	}
	if !found {
		t.Fatal("correction not visible to a fresh sharded read")
	}
}

// TestShardedTypedRefusals: mutations and non-mergeable cross-shard
// shapes come back as typed errors, not silent wrong answers.
func TestShardedTypedRefusals(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	ss := newSharded(t, cfg, 2, 2)
	cases := []struct {
		q    string
		want error
	}{
		{"INSERT INTO extracted VALUES ('x','a','q','v',1,0.5)", ErrReadOnly},
		{"DELETE FROM extracted WHERE entity = 'Madison, Wisconsin'", ErrReadOnly},
		{"SELECT e.value FROM extracted e JOIN extracted f ON e.entity = f.entity", ErrUnsupported},
		{"SELECT attribute, COUNT(*) FROM extracted GROUP BY attribute HAVING COUNT(*) > 3", ErrUnsupported},
		{"SELECT COUNT(*) + 1 FROM extracted", ErrUnsupported},
	}
	for _, c := range cases {
		_, err := ss.SQL(ctx, c.q)
		if !errors.Is(err, c.want) {
			t.Errorf("%q: got %v, want %v", c.q, err, c.want)
		}
	}
}

// TestShardLossDegradedServing: killing a shard degrades reads instead
// of failing them — partial results arrive WITH a *DegradedError naming
// the gap, replicated keyword search stays complete, entity-routed
// reads for lost entities report the gap, and healthy-shard routing
// keeps answering exactly.
func TestShardLossDegradedServing(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	single := newSingle(t, cfg, 4)
	ss := newSharded(t, cfg, 4, 4)

	const dead = 2
	if err := ss.KillShard(dead); err != nil {
		t.Fatal(err)
	}
	if got := ss.DownShards(); !reflect.DeepEqual(got, []int{dead}) {
		t.Fatalf("DownShards = %v", got)
	}

	// Fan-out read: partial result + typed degraded error.
	const q = "SELECT entity, attribute, value FROM extracted ORDER BY entity, attribute, qualifier"
	rs, err := ss.SQL(ctx, q)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("want DegradedError, got %v", err)
	}
	if !reflect.DeepEqual(de.Down, []int{dead}) || de.Shards != 4 {
		t.Fatalf("degraded marker %+v", de)
	}
	if rs == nil || len(rs.Rows) == 0 {
		t.Fatal("no partial result served")
	}
	full, err := single.SQL(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) >= len(full.Rows) {
		t.Fatalf("partial (%d rows) not smaller than full (%d rows)", len(rs.Rows), len(full.Rows))
	}
	// The partial stream is exactly the full stream minus the dead
	// shard's entities — surviving rows are not reordered or dropped.
	aliveRows := map[string]int{}
	for _, row := range full.Rows {
		if ss.Owner(row[0].S) != dead {
			aliveRows[renderTuple(row)]++
		}
	}
	for _, row := range rs.Rows {
		k := renderTuple(row)
		if aliveRows[k] == 0 {
			t.Fatalf("partial result contains unexpected row %q", k)
		}
		aliveRows[k]--
	}
	for k, c := range aliveRows {
		if c != 0 {
			t.Fatalf("partial result missing surviving row %q", k)
		}
	}

	// Replicated keyword search: complete, no degradation.
	if _, err := ss.KeywordSearch(ctx, "madison", 5); err != nil {
		t.Fatalf("keyword search should survive shard loss: %v", err)
	}

	// Entity-routed read on a lost entity: typed gap; on a healthy
	// entity: exact answer.
	var lost, alive string
	for i := 0; i < 1000; i++ {
		e := fmt.Sprintf("probe-%d", i)
		if ss.Owner(e) == dead && lost == "" {
			lost = e
		}
		if ss.Owner(e) != dead && alive == "" {
			alive = e
		}
	}
	if _, err := ss.SQL(ctx, fmt.Sprintf("SELECT value FROM extracted WHERE entity = '%s'", lost)); !errors.As(err, &de) {
		t.Fatalf("routed read to dead shard: want DegradedError, got %v", err)
	}
	if _, err := ss.SQL(ctx, fmt.Sprintf("SELECT value FROM extracted WHERE entity = '%s'", alive)); err != nil {
		t.Fatalf("routed read to healthy shard: %v", err)
	}

	// Guided flow: candidates still come from the merged healthy
	// catalog; answer is partial with the gap marked.
	ga, err := ss.AskGuided(ctx, "temperature", 3)
	if !errors.As(err, &de) {
		t.Fatalf("ask guided: want DegradedError, got %v", err)
	}
	if ga == nil || len(ga.Candidates) == 0 {
		t.Fatal("ask guided served nothing")
	}

	// Killing everything flips the backend to closed.
	for i := 0; i < 4; i++ {
		ss.KillShard(i)
	}
	if _, err := ss.SQL(ctx, q); !errors.Is(err, core.ErrClosed) && !errors.As(err, &de) {
		t.Fatalf("all-shards-down read: %v", err)
	}
	if !ss.Closing() {
		t.Fatal("all shards down should report closing")
	}
}

func renderTuple(row rdbms.Tuple) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// TestShardedDurableReopen: a durable layout reopens warm with the same
// shard count and refuses a mismatched one.
func TestShardedDurableReopen(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	dir := t.TempDir()

	ss, err := Open(Config{Shards: 2, Dir: dir, System: cfg})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ss.BulkIngest(ctx, "city", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 {
		t.Fatal("ingest loaded nothing")
	}
	wantRows, err := ss.ExtractedRows()
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	// The refusal is typed: callers distinguish "layout pinned to a
	// different count" from any other open failure.
	var mm *ShardCountMismatchError
	if _, err := Open(Config{Shards: 3, Dir: dir, System: cfg}); err == nil {
		t.Fatal("mismatched shard count must refuse to open")
	} else if !errors.As(err, &mm) {
		t.Fatalf("mismatch error %v is not a ShardCountMismatchError", err)
	} else if mm.Pinned != 2 || mm.Asked != 3 || mm.Dir != dir {
		t.Fatalf("mismatch error carries pinned=%d asked=%d dir=%q, want 2/3/%q", mm.Pinned, mm.Asked, mm.Dir, dir)
	}

	ss2, err := Open(Config{Shards: 2, Dir: dir, System: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	gotRows, err := ss2.ExtractedRows()
	if err != nil {
		t.Fatal(err)
	}
	if gotRows != wantRows {
		t.Fatalf("reopened rows %d, want %d", gotRows, wantRows)
	}
	if _, err := ss2.SQL(ctx, "SELECT COUNT(*) FROM extracted"); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSubscribeAndCorrect: standing queries fan to every shard,
// so a correction on any entity fires on its owner with the common id.
func TestShardedSubscribeAndCorrect(t *testing.T) {
	cfg := newCorpusConfig(t)
	ctx := context.Background()
	ss := newSharded(t, cfg, 4, 4)

	id, err := ss.Subscribe(alert.Subscription{
		User: "watcher", Attribute: "temperature", Op: alert.OpGT, Threshold: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Fatalf("bad subscription id %d", id)
	}
	for _, f := range sampleFacts(t, ss, "temperature", 6) {
		if err := ss.CorrectValue(ctx, "auditor", f[0], "temperature", f[1], "999"); err != nil {
			t.Fatalf("correct %s/%s: %v", f[0], f[1], err)
		}
	}
	fired := 0
	for i := 0; i < 4; i++ {
		fired += len(ss.Shard(i).Alerts.History())
	}
	if fired == 0 {
		t.Fatal("no alert fired on any shard after threshold-crossing corrections")
	}
}
