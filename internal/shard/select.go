package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rdbms"
)

// shardExec executes one SQL string against one shard (a pinned view or
// a one-shot read) and returns its result. A core.ErrClosed error marks
// the shard as a gap rather than failing the whole query.
type shardExec func(i int, query string) (*rdbms.ResultSet, error)

// execSharded plans and executes one read statement across n shards.
// Routing order: verbatim entity-routed single-shard execution (every
// SQL feature supported), then the cross-shard merge paths — aggregate
// recombination, DISTINCT dedup, ORDER BY k-way merge, and shard-major
// concatenation for unordered scans. Mutations are refused.
func execSharded(ss *ShardedSystem, query string, n int, exec shardExec) (*rdbms.ResultSet, error) {
	stmt, err := rdbms.ParseSQL(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(rdbms.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrReadOnly, query)
	}

	// Entity-routed: a top-level `entity = '...'` conjunct over the
	// partitioned table pins every matching row to one shard; the
	// original statement runs there verbatim, so every SELECT feature
	// (joins on that shard's tables, HAVING, aggregate arithmetic)
	// behaves exactly like a single engine.
	if entity, routed := routedEntity(sel); routed {
		owner := ss.Owner(entity)
		rs, err := exec(owner, query)
		if err != nil {
			if isGap(err) {
				ss.markDown(owner)
				return nil, ss.degraded([]int{owner})
			}
			return nil, err
		}
		return rs, nil
	}

	if sel.Join != nil {
		return nil, fmt.Errorf("%w: cross-shard JOIN (add an entity filter to route it)", ErrUnsupported)
	}

	grouped := len(sel.GroupBy) > 0
	for _, se := range sel.Exprs {
		if !se.Star && rdbms.HasAggregate(se.Expr) {
			grouped = true
		}
	}
	if grouped {
		return execShardedAgg(ss, sel, n, exec)
	}
	if sel.Distinct {
		return execShardedDistinct(ss, sel, n, exec)
	}
	if len(sel.OrderBy) > 0 {
		return execShardedOrdered(ss, sel, n, exec)
	}
	return execShardedUnordered(ss, sel, n, exec)
}

// routedEntity reports whether the statement is pinned to one entity of
// the partitioned extracted table by a top-level equality conjunct.
func routedEntity(sel rdbms.SelectStmt) (string, bool) {
	if sel.From != core.TableName {
		return "", false
	}
	for _, c := range conjuncts(sel.Where) {
		be, ok := c.(rdbms.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		if e, ok := entityEqSides(be.Left, be.Right); ok {
			return e, true
		}
		if e, ok := entityEqSides(be.Right, be.Left); ok {
			return e, true
		}
	}
	return "", false
}

func entityEqSides(colSide, litSide rdbms.Expr) (string, bool) {
	cr, ok := colSide.(rdbms.ColumnRef)
	if !ok || cr.Column != "entity" {
		return "", false
	}
	lit, ok := litSide.(rdbms.Literal)
	if !ok || lit.Val.Type != rdbms.TString {
		return "", false
	}
	return lit.Val.S, true
}

func conjuncts(e rdbms.Expr) []rdbms.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(rdbms.BinaryExpr); ok && be.Op == "AND" {
		return append(conjuncts(be.Left), conjuncts(be.Right)...)
	}
	return []rdbms.Expr{e}
}

// fanOut runs the (possibly rewritten) statement on every shard in
// parallel. Gaps (closed shards) come back in down; any other error
// fails the query. results is indexed by shard, nil at gaps.
func fanOut(ss *ShardedSystem, n int, query string, exec shardExec) (results []*rdbms.ResultSet, down []int, err error) {
	results = make([]*rdbms.ResultSet, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = exec(i, query)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e == nil {
			continue
		}
		if isGap(e) {
			ss.markDown(i)
			down = append(down, i)
			results[i] = nil
			continue
		}
		return nil, nil, e
	}
	return results, down, nil
}

// finishPartial wraps a merged result with its degraded marker (if
// any); with no surviving shard there is no result at all.
func finishPartial(ss *ShardedSystem, rs *rdbms.ResultSet, down []int, served bool) (*rdbms.ResultSet, error) {
	if !served {
		if de := ss.degraded(down); de != nil {
			return nil, de
		}
		return nil, core.ErrClosed
	}
	if de := ss.degraded(down); de != nil {
		return rs, de
	}
	return rs, nil
}

// applyOffsetLimit mirrors the engine's final OFFSET/LIMIT step.
func applyOffsetLimit(rs *rdbms.ResultSet, offset, limit int) {
	if offset > 0 {
		if offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[offset:]
		}
	}
	if limit >= 0 && len(rs.Rows) > limit {
		rs.Rows = rs.Rows[:limit]
	}
}

// pushedLimit converts a global OFFSET o LIMIT l into the per-shard
// prefix bound o+l (any global survivor is within its shard's first o+l
// rows); -1 when unbounded.
func pushedLimit(sel rdbms.SelectStmt) int {
	if sel.Limit < 0 {
		return -1
	}
	return sel.Offset + sel.Limit
}

// orderLessVals mirrors the engine's orderLess: incomparable pairs and
// equal keys fall through to the next key; a full tie is "not less".
func orderLessVals(a, b []rdbms.Value, keys []rdbms.OrderKey) bool {
	for i, k := range keys {
		c, ok := rdbms.Compare(a[i], b[i])
		if !ok || c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// canonKey encodes values into the engine's grouping/dedup equivalence:
// numerics unify by float64 value, strings by bytes, bools, NULLs.
func canonKey(vals []rdbms.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		switch v.Type {
		case rdbms.TNull:
			sb.WriteByte('z')
		case rdbms.TInt, rdbms.TFloat:
			f, _ := v.AsFloat()
			fmt.Fprintf(&sb, "n%016x", math.Float64bits(f))
		case rdbms.TString:
			fmt.Fprintf(&sb, "s%d:%s", len(v.S), v.S)
		case rdbms.TBool:
			if v.B {
				sb.WriteString("b1")
			} else {
				sb.WriteString("b0")
			}
		}
	}
	return sb.String()
}

// --- Ordered merge --------------------------------------------------------

// execShardedOrdered is the tentpole path: each shard runs the query
// with the sort (and a tightened LIMIT) pushed down, returning streams
// already in ORDER BY order; a k-way merge recombines them preserving
// per-shard tie order and breaking cross-shard ties by shard index.
// ORDER BY keys that are not already output columns are appended to the
// per-shard projection under reserved aliases and stripped after the
// merge, so keys over unprojected columns merge exactly.
func execShardedOrdered(ss *ShardedSystem, sel rdbms.SelectStmt, n int, exec shardExec) (*rdbms.ResultSet, error) {
	shardSel := sel
	shardSel.Limit = pushedLimit(sel)
	shardSel.Offset = 0

	// Resolve each key to an existing output column (mirroring the
	// engine's alias resolution: first name match wins) or append it.
	anyStar := false
	var names []string
	for _, se := range sel.Exprs {
		if se.Star {
			anyStar = true
		}
		names = append(names, rdbms.SelectColumnName(se))
	}
	type keyLoc struct {
		outIdx int // >= 0: reuse this output column
		appIdx int // >= 0: appended column appIdx
	}
	locs := make([]keyLoc, len(sel.OrderBy))
	appended := 0
	exprs := append([]rdbms.SelectExpr{}, sel.Exprs...)
	for ki, k := range sel.OrderBy {
		locs[ki] = keyLoc{outIdx: -1, appIdx: -1}
		if !anyStar {
			if cr, ok := k.Expr.(rdbms.ColumnRef); ok && cr.Table == "" {
				for i, name := range names {
					if name == cr.Column {
						locs[ki].outIdx = i
						break
					}
				}
			}
		}
		if locs[ki].outIdx < 0 {
			exprs = append(exprs, rdbms.SelectExpr{Expr: k.Expr, Alias: fmt.Sprintf("__k%d", appended)})
			locs[ki].appIdx = appended
			appended++
		}
	}
	shardSel.Exprs = exprs

	results, down, err := fanOut(ss, n, rdbms.DeparseSelect(&shardSel), exec)
	if err != nil {
		return nil, err
	}

	out := &rdbms.ResultSet{Plan: fmt.Sprintf("sharded fan-out(%d) + k-way merge", n)}
	served := false
	baseN := 0
	for _, rs := range results {
		if rs != nil {
			baseN = len(rs.Columns) - appended
			out.Columns = rs.Columns[:baseN]
			served = true
			break
		}
	}
	if !served {
		return finishPartial(ss, nil, down, false)
	}

	keysOf := func(row rdbms.Tuple) []rdbms.Value {
		keys := make([]rdbms.Value, len(locs))
		for ki, loc := range locs {
			if loc.outIdx >= 0 {
				keys[ki] = row[loc.outIdx]
			} else {
				keys[ki] = row[baseN+loc.appIdx]
			}
		}
		return keys
	}

	// K-way merge over the pre-sorted streams: among the current heads,
	// the strictly smallest wins; ties keep the lowest shard index.
	cursors := make([]int, n)
	heads := make([][]rdbms.Value, n)
	for {
		best := -1
		for i, rs := range results {
			if rs == nil || cursors[i] >= len(rs.Rows) {
				continue
			}
			if heads[i] == nil {
				heads[i] = keysOf(rs.Rows[cursors[i]])
			}
			if best < 0 || orderLessVals(heads[i], heads[best], sel.OrderBy) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		row := results[best].Rows[cursors[best]]
		out.Rows = append(out.Rows, row[:baseN])
		cursors[best]++
		heads[best] = nil
	}
	applyOffsetLimit(out, sel.Offset, sel.Limit)
	return finishPartial(ss, out, down, true)
}

// --- Unordered scans -------------------------------------------------------

// execShardedUnordered recombines unordered scans. For the partitioned
// extracted table the bulk-ingest stream is globally entity-sorted (the
// cluster sorts its reduce output by key), so every shard's heap holds
// an entity-ascending subsequence of the single-engine stream — and a
// merge keyed on the entity column (shipped per shard under a reserved
// alias and stripped afterwards) reconstructs that stream byte-exactly,
// intra-entity order included, since one entity never spans two shards.
// Other tables are replicated or shard-local; their rows concatenate
// shard-major.
func execShardedUnordered(ss *ShardedSystem, sel rdbms.SelectStmt, n int, exec shardExec) (*rdbms.ResultSet, error) {
	shardSel := sel
	shardSel.Limit = pushedLimit(sel)
	shardSel.Offset = 0
	entityMerge := sel.From == core.TableName
	if entityMerge {
		shardSel.Exprs = append(append([]rdbms.SelectExpr{}, sel.Exprs...),
			rdbms.SelectExpr{Expr: rdbms.ColumnRef{Column: "entity"}, Alias: "__k0"})
	}
	results, down, err := fanOut(ss, n, rdbms.DeparseSelect(&shardSel), exec)
	if err != nil {
		return nil, err
	}
	out := &rdbms.ResultSet{Plan: fmt.Sprintf("sharded fan-out(%d) + entity merge", n)}
	served := false
	baseN := 0
	for _, rs := range results {
		if rs != nil {
			baseN = len(rs.Columns)
			if entityMerge {
				baseN--
			}
			out.Columns = rs.Columns[:baseN]
			served = true
			break
		}
	}
	if !served {
		return finishPartial(ss, nil, down, false)
	}
	if entityMerge {
		mergeByEntity(results, baseN, func(row rdbms.Tuple) {
			out.Rows = append(out.Rows, row[:baseN])
		})
	} else {
		out.Plan = fmt.Sprintf("sharded fan-out(%d) + concat", n)
		for _, rs := range results {
			if rs != nil {
				out.Rows = append(out.Rows, rs.Rows...)
			}
		}
	}
	applyOffsetLimit(out, sel.Offset, sel.Limit)
	return finishPartial(ss, out, down, true)
}

// mergeByEntity merges per-shard streams on ascending entity (byte
// order, matching the cluster's key sort), emitting each row to emit.
// The entity value sits at column entIdx. Runs of one entity never
// cross shards, so advancing within the winning shard while its head
// stays minimal preserves intra-entity order; the lowest shard index
// would win a cross-shard tie, but partitioning makes ties impossible.
func mergeByEntity(results []*rdbms.ResultSet, entIdx int, emit func(rdbms.Tuple)) {
	cursors := make([]int, len(results))
	for {
		best := -1
		for i, rs := range results {
			if rs == nil || cursors[i] >= len(rs.Rows) {
				continue
			}
			if best < 0 || rs.Rows[cursors[i]][entIdx].S < results[best].Rows[cursors[best]][entIdx].S {
				best = i
			}
		}
		if best < 0 {
			return
		}
		emit(results[best].Rows[cursors[best]])
		cursors[best]++
	}
}

// --- DISTINCT -------------------------------------------------------------

// execShardedDistinct dedups per shard, then globally. With ORDER BY,
// every key must already be an output column (appending merge keys
// would change dedup identity), and rows merge in sorted order with
// global dedup — matching the engine's sort-then-dedup pipeline.
// Without ORDER BY, dedup order is first-seen over the scan: the raw
// (non-distinct) stream is reconstructed with the entity merge and
// deduped globally, reproducing the single engine's first-seen order at
// the cost of shipping per-shard duplicates.
func execShardedDistinct(ss *ShardedSystem, sel rdbms.SelectStmt, n int, exec shardExec) (*rdbms.ResultSet, error) {
	if len(sel.OrderBy) == 0 && sel.From == core.TableName {
		return execShardedDistinctScan(ss, sel, n, exec)
	}
	var names []string
	for _, se := range sel.Exprs {
		if se.Star {
			names = nil
			break
		}
		names = append(names, rdbms.SelectColumnName(se))
	}
	var keyIdx []int
	for _, k := range sel.OrderBy {
		idx := -1
		if cr, ok := k.Expr.(rdbms.ColumnRef); ok && cr.Table == "" {
			for i, name := range names {
				if name == cr.Column {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("%w: DISTINCT ORDER BY keys must be output columns", ErrUnsupported)
		}
		keyIdx = append(keyIdx, idx)
	}

	shardSel := sel
	shardSel.Limit = pushedLimit(sel)
	shardSel.Offset = 0
	results, down, err := fanOut(ss, n, rdbms.DeparseSelect(&shardSel), exec)
	if err != nil {
		return nil, err
	}
	out := &rdbms.ResultSet{Plan: fmt.Sprintf("sharded fan-out(%d) + distinct merge", n)}
	served := false
	for _, rs := range results {
		if rs != nil {
			out.Columns = rs.Columns
			served = true
			break
		}
	}
	if !served {
		return finishPartial(ss, nil, down, false)
	}

	seen := map[string]bool{}
	emit := func(row rdbms.Tuple) {
		k := canonKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	if len(sel.OrderBy) > 0 {
		cursors := make([]int, n)
		for {
			best := -1
			var bestKeys []rdbms.Value
			for i, rs := range results {
				if rs == nil || cursors[i] >= len(rs.Rows) {
					continue
				}
				keys := make([]rdbms.Value, len(keyIdx))
				for ki, idx := range keyIdx {
					keys[ki] = rs.Rows[cursors[i]][idx]
				}
				if best < 0 || orderLessVals(keys, bestKeys, sel.OrderBy) {
					best, bestKeys = i, keys
				}
			}
			if best < 0 {
				break
			}
			emit(results[best].Rows[cursors[best]])
			cursors[best]++
		}
	} else {
		for _, rs := range results {
			if rs == nil {
				continue
			}
			for _, row := range rs.Rows {
				emit(row)
			}
		}
	}
	applyOffsetLimit(out, sel.Offset, sel.Limit)
	return finishPartial(ss, out, down, true)
}

// execShardedDistinctScan serves unordered DISTINCT over the extracted
// table: fetch each shard's raw projection (DISTINCT stripped — a shard
// cannot know which duplicate is globally first) with the entity column
// appended, entity-merge back into the single-engine stream, then dedup
// first-seen and apply OFFSET/LIMIT, mirroring the engine's pipeline.
// The LIMIT cannot be pushed down: l distinct rows may hide behind
// arbitrarily many raw ones.
func execShardedDistinctScan(ss *ShardedSystem, sel rdbms.SelectStmt, n int, exec shardExec) (*rdbms.ResultSet, error) {
	shardSel := sel
	shardSel.Distinct = false
	shardSel.Limit = -1
	shardSel.Offset = 0
	shardSel.Exprs = append(append([]rdbms.SelectExpr{}, sel.Exprs...),
		rdbms.SelectExpr{Expr: rdbms.ColumnRef{Column: "entity"}, Alias: "__k0"})
	results, down, err := fanOut(ss, n, rdbms.DeparseSelect(&shardSel), exec)
	if err != nil {
		return nil, err
	}
	out := &rdbms.ResultSet{Plan: fmt.Sprintf("sharded fan-out(%d) + distinct scan merge", n)}
	served := false
	baseN := 0
	for _, rs := range results {
		if rs != nil {
			baseN = len(rs.Columns) - 1
			out.Columns = rs.Columns[:baseN]
			served = true
			break
		}
	}
	if !served {
		return finishPartial(ss, nil, down, false)
	}
	seen := map[string]bool{}
	mergeByEntity(results, baseN, func(row rdbms.Tuple) {
		base := row[:baseN]
		k := canonKey(base)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, base)
		}
	})
	applyOffsetLimit(out, sel.Offset, sel.Limit)
	return finishPartial(ss, out, down, true)
}

// --- Aggregate recombination ----------------------------------------------

// aggPartial describes how one select-list position recombines.
type aggPartial struct {
	kind    byte // 'g' group key, 'l' literal, 'a' aggregate
	grpIdx  int  // for 'g': index into GroupBy / per-shard group columns
	lit     rdbms.Value
	fn      string // for 'a': COUNT, SUM, AVG, MIN, MAX
	partIdx int    // for 'a': index of the partial column block
}

// execShardedAgg recombines aggregates from per-shard partials so the
// merged values mirror the engine's aggState exactly: COUNT sums; SUM
// keeps integer typing iff every shard's partial is integer; AVG
// divides the global float sum by the global count; MIN/MAX compare
// partials (NULLs ignored, first shard wins ties, like first-in-scan).
// Merged groups emerge sorted by group key — a single engine emits
// first-seen scan order, which no shard can observe globally. HAVING
// and aggregate arithmetic are refused; entity-routed queries support
// them.
func execShardedAgg(ss *ShardedSystem, sel rdbms.SelectStmt, n int, exec shardExec) (*rdbms.ResultSet, error) {
	if sel.Having != nil {
		return nil, fmt.Errorf("%w: HAVING over cross-shard groups", ErrUnsupported)
	}
	if sel.Distinct {
		return nil, fmt.Errorf("%w: DISTINCT with aggregates", ErrUnsupported)
	}

	// Per-shard projection: the group-by columns first, then partial
	// blocks for each aggregate position.
	var shardExprs []rdbms.SelectExpr
	for gi, g := range sel.GroupBy {
		shardExprs = append(shardExprs, rdbms.SelectExpr{Expr: g, Alias: fmt.Sprintf("__g%d", gi)})
	}
	nGroup := len(sel.GroupBy)
	var plans []aggPartial
	partCols := 0
	var outNames []string
	for _, se := range sel.Exprs {
		if se.Star {
			return nil, fmt.Errorf("%w: * with aggregates", ErrUnsupported)
		}
		outNames = append(outNames, rdbms.SelectColumnName(se))
		switch x := se.Expr.(type) {
		case rdbms.AggExpr:
			p := aggPartial{kind: 'a', fn: x.Func, partIdx: partCols}
			switch x.Func {
			case "COUNT":
				shardExprs = append(shardExprs, rdbms.SelectExpr{Expr: x, Alias: fmt.Sprintf("__p%d", partCols)})
				partCols++
			case "SUM", "MIN", "MAX":
				shardExprs = append(shardExprs, rdbms.SelectExpr{Expr: x, Alias: fmt.Sprintf("__p%d", partCols)})
				partCols++
			case "AVG":
				shardExprs = append(shardExprs,
					rdbms.SelectExpr{Expr: rdbms.AggExpr{Func: "SUM", Arg: x.Arg}, Alias: fmt.Sprintf("__p%d", partCols)},
					rdbms.SelectExpr{Expr: rdbms.AggExpr{Func: "COUNT", Arg: x.Arg}, Alias: fmt.Sprintf("__p%d", partCols+1)})
				partCols += 2
			default:
				return nil, fmt.Errorf("%w: aggregate %s", ErrUnsupported, x.Func)
			}
			plans = append(plans, p)
		case rdbms.ColumnRef:
			gi := -1
			for i, g := range sel.GroupBy {
				if g.Column == x.Column && (x.Table == "" || g.Table == "" || g.Table == x.Table) {
					gi = i
					break
				}
			}
			if gi < 0 {
				return nil, fmt.Errorf("shard: column %s is neither aggregated nor grouped", x)
			}
			plans = append(plans, aggPartial{kind: 'g', grpIdx: gi})
		case rdbms.Literal:
			plans = append(plans, aggPartial{kind: 'l', lit: x.Val})
		default:
			return nil, fmt.Errorf("%w: aggregate arithmetic must be entity-routed", ErrUnsupported)
		}
	}

	shardSel := sel
	shardSel.Exprs = shardExprs
	shardSel.OrderBy = nil
	shardSel.Limit = -1
	shardSel.Offset = 0
	results, down, err := fanOut(ss, n, rdbms.DeparseSelect(&shardSel), exec)
	if err != nil {
		return nil, err
	}

	type group struct {
		keyVals  []rdbms.Value
		partials [][]rdbms.Value // one partial row block per contributing shard, shard order
	}
	groups := map[string]*group{}
	var order []string
	served := false
	for _, rs := range results {
		if rs == nil {
			continue
		}
		served = true
		for _, row := range rs.Rows {
			keyVals := row[:nGroup]
			k := canonKey(keyVals)
			gr, ok := groups[k]
			if !ok {
				gr = &group{keyVals: keyVals}
				groups[k] = gr
				order = append(order, k)
			}
			gr.partials = append(gr.partials, row[nGroup:])
		}
	}
	if !served {
		return finishPartial(ss, nil, down, false)
	}

	// Deterministic output order: groups sorted by key values.
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := groups[order[a]].keyVals, groups[order[b]].keyVals
		for i := range ka {
			c, ok := rdbms.Compare(ka[i], kb[i])
			if ok && c != 0 {
				return c < 0
			}
		}
		return order[a] < order[b]
	})

	out := &rdbms.ResultSet{Columns: outNames, Plan: fmt.Sprintf("sharded fan-out(%d) + partial aggregation", n)}
	for _, k := range order {
		gr := groups[k]
		row := make(rdbms.Tuple, len(plans))
		for i, p := range plans {
			switch p.kind {
			case 'g':
				row[i] = gr.keyVals[p.grpIdx]
			case 'l':
				row[i] = p.lit
			case 'a':
				row[i] = combineAgg(p, gr.partials)
			}
		}
		out.Rows = append(out.Rows, row)
	}

	// ORDER BY over the merged output: keys must resolve to output
	// columns (by alias/name or structural equality with a projection).
	if len(sel.OrderBy) > 0 {
		var keyIdx []int
		for _, k := range sel.OrderBy {
			idx := -1
			if cr, ok := k.Expr.(rdbms.ColumnRef); ok && cr.Table == "" {
				for i, name := range outNames {
					if name == cr.Column {
						idx = i
						break
					}
				}
			}
			if idx < 0 {
				want := rdbms.SelectColumnName(rdbms.SelectExpr{Expr: k.Expr})
				for i, name := range outNames {
					if name == want {
						idx = i
						break
					}
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("%w: aggregate ORDER BY keys must be output columns", ErrUnsupported)
			}
			keyIdx = append(keyIdx, idx)
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			ka := make([]rdbms.Value, len(keyIdx))
			kb := make([]rdbms.Value, len(keyIdx))
			for i, idx := range keyIdx {
				ka[i], kb[i] = out.Rows[a][idx], out.Rows[b][idx]
			}
			return orderLessVals(ka, kb, sel.OrderBy)
		})
	}
	applyOffsetLimit(out, sel.Offset, sel.Limit)
	return finishPartial(ss, out, down, true)
}

// combineAgg folds per-shard partial blocks into one global aggregate,
// mirroring aggState.result's typing rules.
func combineAgg(p aggPartial, partials [][]rdbms.Value) rdbms.Value {
	switch p.fn {
	case "COUNT":
		var total int64
		for _, blk := range partials {
			total += blk[p.partIdx].I
		}
		return rdbms.NewInt(total)
	case "SUM":
		var sumI int64
		var sumF float64
		isInt := true
		seen := false
		for _, blk := range partials {
			v := blk[p.partIdx]
			if v.IsNull() {
				continue
			}
			seen = true
			if v.Type == rdbms.TInt {
				sumI += v.I
			} else {
				isInt = false
			}
			f, _ := v.AsFloat()
			sumF += f
		}
		if !seen {
			return rdbms.Null()
		}
		if isInt {
			return rdbms.NewInt(sumI)
		}
		return rdbms.NewFloat(sumF)
	case "AVG":
		var count int64
		var sumF float64
		for _, blk := range partials {
			count += blk[p.partIdx+1].I
			if s := blk[p.partIdx]; !s.IsNull() {
				f, _ := s.AsFloat()
				sumF += f
			}
		}
		if count == 0 {
			return rdbms.Null()
		}
		return rdbms.NewFloat(sumF / float64(count))
	case "MIN", "MAX":
		best := rdbms.Null()
		for _, blk := range partials {
			v := blk[p.partIdx]
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := rdbms.Compare(v, best); ok {
				if (p.fn == "MIN" && c < 0) || (p.fn == "MAX" && c > 0) {
					best = v
				}
			}
		}
		return best
	}
	return rdbms.Null()
}
