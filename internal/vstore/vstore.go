// Package vstore implements a Subversion-like versioned store for
// unstructured corpus snapshots. Daily snapshots of crawled documents
// overlap heavily, so only the first version of a document is stored in
// full; later versions are stored as line-level deltas against the
// previous version. The store reports exact byte accounting so the
// snapshot-storage experiment (E7) can measure the space saving the paper
// claims for diff-based storage.
package vstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Revision numbers a snapshot; the first committed snapshot is revision 1.
type Revision int

// Store is a versioned document store. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	head  Revision
	docs  map[string]*history // keyed by document title/path
	bytes struct {
		full  int // bytes stored as full texts
		delta int // bytes stored as delta scripts
		raw   int // bytes that full-snapshot storage would have used
	}
}

type history struct {
	baseRev  Revision
	baseText string
	// versions[i] applies on top of the result of versions[:i] applied to
	// baseText. Each has the revision at which it was committed.
	versions []delta
	// hashByRev caches content hash per committed revision for integrity
	// checks.
	hashByRev map[Revision]string
}

type delta struct {
	rev    Revision
	script []edit
	size   int
}

// edit is one line-range replacement: replace lines [Start, End) of the
// previous version with Lines.
type edit struct {
	Start int
	End   int
	Lines []string
}

// NewStore returns an empty store at revision 0.
func NewStore() *Store {
	return &Store{docs: make(map[string]*history)}
}

// Head returns the latest committed revision (0 if none).
func (s *Store) Head() Revision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Commit stores a snapshot: the full set of document texts keyed by title.
// Documents absent from a snapshot keep their previous content (the store
// models an overlay crawl, not deletion); pass an empty string to record
// an explicit deletion. It returns the new revision number.
func (s *Store) Commit(texts map[string]string) Revision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head++
	rev := s.head
	titles := make([]string, 0, len(texts))
	for t := range texts {
		titles = append(titles, t)
	}
	sort.Strings(titles)
	for _, title := range titles {
		text := texts[title]
		s.bytes.raw += len(text)
		h := s.docs[title]
		if h == nil {
			h = &history{baseRev: rev, baseText: text, hashByRev: map[Revision]string{rev: hashText(text)}}
			s.docs[title] = h
			s.bytes.full += len(text)
			continue
		}
		prev := h.materializeLocked(len(h.versions))
		if prev == text {
			h.hashByRev[rev] = hashText(text)
			continue // unchanged: zero additional storage
		}
		script := diffLines(splitLines(prev), splitLines(text))
		d := delta{rev: rev, script: script, size: scriptSize(script)}
		h.versions = append(h.versions, d)
		h.hashByRev[rev] = hashText(text)
		s.bytes.delta += d.size
	}
	return rev
}

// Checkout returns the text of a document as of revision rev. ok is false
// if the document did not exist at that revision.
func (s *Store) Checkout(title string, rev Revision) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.docs[title]
	if h == nil || rev < h.baseRev || rev > s.head {
		return "", false
	}
	// Count how many deltas were committed at or before rev.
	n := 0
	for _, d := range h.versions {
		if d.rev <= rev {
			n++
		}
	}
	return h.materializeLocked(n), true
}

// CheckoutHead returns the latest text of a document.
func (s *Store) CheckoutHead(title string) (string, bool) {
	return s.Checkout(title, s.Head())
}

// Titles returns all stored document titles in sorted order.
func (s *Store) Titles() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for t := range s.docs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Verify recomputes the content hash of every (document, revision) pair and
// compares it with the hash recorded at commit time. It returns an error
// naming the first mismatch, or nil.
func (s *Store) Verify() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for title, h := range s.docs {
		for rev, want := range h.hashByRev {
			n := 0
			for _, d := range h.versions {
				if d.rev <= rev {
					n++
				}
			}
			if got := hashText(h.materializeLocked(n)); got != want {
				return fmt.Errorf("vstore: %q at r%d: hash %s, recorded %s", title, rev, got, want)
			}
		}
	}
	return nil
}

// Stats reports storage accounting.
type Stats struct {
	Head       Revision
	Documents  int
	FullBytes  int // base versions stored in full
	DeltaBytes int // delta scripts
	RawBytes   int // what storing every snapshot in full would cost
	Deltas     int
}

// StoredBytes is the total the store actually uses.
func (st Stats) StoredBytes() int { return st.FullBytes + st.DeltaBytes }

// SavingsRatio is RawBytes / StoredBytes (1.0 means no saving).
func (st Stats) SavingsRatio() float64 {
	stored := st.StoredBytes()
	if stored == 0 {
		return 1
	}
	return float64(st.RawBytes) / float64(stored)
}

// Stats returns current storage accounting.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Head: s.head, Documents: len(s.docs),
		FullBytes: s.bytes.full, DeltaBytes: s.bytes.delta, RawBytes: s.bytes.raw,
	}
	for _, h := range s.docs {
		st.Deltas += len(h.versions)
	}
	return st
}

func (h *history) materializeLocked(nDeltas int) string {
	if nDeltas == 0 {
		return h.baseText
	}
	lines := splitLines(h.baseText)
	for i := 0; i < nDeltas; i++ {
		lines = applyScript(lines, h.versions[i].script)
	}
	return strings.Join(lines, "\n")
}

func hashText(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func scriptSize(script []edit) int {
	size := 0
	for _, e := range script {
		size += 16 // range header
		for _, l := range e.Lines {
			size += len(l) + 1
		}
	}
	return size
}

// diffLines computes a line-level edit script transforming a into b using a
// simple common-prefix/suffix trim plus a greedy longest-common-subsequence
// on the middle via dynamic programming (bounded: if the middle is huge the
// whole middle is replaced, which is still correct, just less compact).
func diffLines(a, b []string) []edit {
	// Trim common prefix.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	// Trim common suffix.
	sA, sB := len(a), len(b)
	for sA > p && sB > p && a[sA-1] == b[sB-1] {
		sA--
		sB--
	}
	midA, midB := a[p:sA], b[p:sB]
	const dpLimit = 2000
	if len(midA)*len(midB) > dpLimit*dpLimit || len(midA) == 0 || len(midB) == 0 {
		if len(midA) == 0 && len(midB) == 0 {
			return nil
		}
		return []edit{{Start: p, End: sA, Lines: append([]string(nil), midB...)}}
	}
	// LCS DP over the middle.
	n, m := len(midA), len(midB)
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if midA[i] == midB[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var edits []edit
	i, j := 0, 0
	for i < n || j < m {
		if i < n && j < m && midA[i] == midB[j] {
			i++
			j++
			continue
		}
		// Collect a maximal non-matching block.
		startA, startB := i, j
		for i < n || j < m {
			if i < n && j < m && midA[i] == midB[j] {
				break
			}
			if i < n && (j >= m || dp[i+1][j] >= dp[i][j+1]) {
				i++
			} else {
				j++
			}
		}
		edits = append(edits, edit{
			Start: p + startA,
			End:   p + i,
			Lines: append([]string(nil), midB[startB:j]...),
		})
	}
	return edits
}

// applyScript applies an edit script to lines; edits are ordered by Start
// and expressed in the coordinate space of the input.
func applyScript(lines []string, script []edit) []string {
	if len(script) == 0 {
		return lines
	}
	out := make([]string, 0, len(lines))
	pos := 0
	for _, e := range script {
		if e.Start > pos {
			out = append(out, lines[pos:e.Start]...)
		}
		out = append(out, e.Lines...)
		pos = e.End
	}
	if pos < len(lines) {
		out = append(out, lines[pos:]...)
	}
	return out
}
