package vstore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommitCheckoutRoundTrip(t *testing.T) {
	s := NewStore()
	r1 := s.Commit(map[string]string{"a": "line1\nline2\nline3", "b": "hello"})
	if r1 != 1 {
		t.Fatalf("first revision = %d", r1)
	}
	r2 := s.Commit(map[string]string{"a": "line1\nCHANGED\nline3"})
	if r2 != 2 {
		t.Fatalf("second revision = %d", r2)
	}
	if got, ok := s.Checkout("a", r1); !ok || got != "line1\nline2\nline3" {
		t.Fatalf("checkout a@1 = %q ok=%v", got, ok)
	}
	if got, ok := s.Checkout("a", r2); !ok || got != "line1\nCHANGED\nline3" {
		t.Fatalf("checkout a@2 = %q ok=%v", got, ok)
	}
	// b was not in snapshot 2; it keeps its r1 content.
	if got, ok := s.Checkout("b", r2); !ok || got != "hello" {
		t.Fatalf("checkout b@2 = %q ok=%v", got, ok)
	}
	if got, ok := s.CheckoutHead("a"); !ok || got != "line1\nCHANGED\nline3" {
		t.Fatalf("CheckoutHead = %q ok=%v", got, ok)
	}
}

func TestCheckoutMissing(t *testing.T) {
	s := NewStore()
	s.Commit(map[string]string{"a": "x"})
	if _, ok := s.Checkout("missing", 1); ok {
		t.Fatal("missing doc should not check out")
	}
	if _, ok := s.Checkout("a", 0); ok {
		t.Fatal("revision 0 predates the document")
	}
	if _, ok := s.Checkout("a", 99); ok {
		t.Fatal("future revision should fail")
	}
}

func TestUnchangedSnapshotCostsNothing(t *testing.T) {
	s := NewStore()
	text := strings.Repeat("stable content line\n", 100)
	s.Commit(map[string]string{"doc": text})
	before := s.Stats()
	for i := 0; i < 10; i++ {
		s.Commit(map[string]string{"doc": text})
	}
	after := s.Stats()
	if after.DeltaBytes != before.DeltaBytes || after.FullBytes != before.FullBytes {
		t.Fatalf("unchanged snapshots must add no storage: before=%+v after=%+v", before, after)
	}
	if after.RawBytes <= before.RawBytes {
		t.Fatal("raw accounting should still grow")
	}
	if after.SavingsRatio() < 10 {
		t.Fatalf("savings ratio = %v, want >= 10 for 11 identical snapshots", after.SavingsRatio())
	}
}

func TestDeltaSmallerThanFull(t *testing.T) {
	s := NewStore()
	base := strings.Repeat("aaaa bbbb cccc dddd\n", 200)
	s.Commit(map[string]string{"doc": base})
	changed := strings.Replace(base, "aaaa bbbb cccc dddd", "EDITED LINE", 1)
	s.Commit(map[string]string{"doc": changed})
	st := s.Stats()
	if st.DeltaBytes >= len(base)/2 {
		t.Fatalf("delta of a one-line edit should be small, got %d bytes (doc %d bytes)", st.DeltaBytes, len(base))
	}
	if got, _ := s.CheckoutHead("doc"); got != changed {
		t.Fatal("delta checkout mismatch")
	}
}

func TestManyRevisionsChain(t *testing.T) {
	s := NewStore()
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = fmt.Sprintf("line %d", i)
	}
	want := make([]string, 0, 30)
	for rev := 0; rev < 30; rev++ {
		lines[rev%50] = fmt.Sprintf("line %d revised at %d", rev%50, rev)
		text := strings.Join(lines, "\n")
		want = append(want, text)
		s.Commit(map[string]string{"doc": text})
	}
	for i, w := range want {
		got, ok := s.Checkout("doc", Revision(i+1))
		if !ok || got != w {
			t.Fatalf("revision %d mismatch", i+1)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitDeletionAsEmpty(t *testing.T) {
	s := NewStore()
	s.Commit(map[string]string{"doc": "content"})
	s.Commit(map[string]string{"doc": ""})
	if got, ok := s.CheckoutHead("doc"); !ok || got != "" {
		t.Fatalf("deleted doc = %q ok=%v", got, ok)
	}
	if got, _ := s.Checkout("doc", 1); got != "content" {
		t.Fatal("history must preserve pre-deletion content")
	}
}

func TestTitles(t *testing.T) {
	s := NewStore()
	s.Commit(map[string]string{"b": "1", "a": "2", "c": "3"})
	got := s.Titles()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Titles = %v", got)
	}
}

func TestDiffApplyProperty(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := bytesToLines(aRaw)
		b := bytesToLines(bRaw)
		script := diffLines(a, b)
		got := applyScript(a, script)
		if len(got) != len(b) {
			return false
		}
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// bytesToLines maps arbitrary bytes into short line slices from a small
// alphabet so diffs exercise real common subsequences.
func bytesToLines(raw []byte) []string {
	lines := make([]string, 0, len(raw))
	for _, x := range raw {
		lines = append(lines, fmt.Sprintf("line-%d", x%7))
	}
	return lines
}

func TestRandomChurnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := NewStore()
	docs := map[string][]string{}
	for i := 0; i < 5; i++ {
		lines := make([]string, 20+rng.Intn(30))
		for j := range lines {
			lines[j] = fmt.Sprintf("doc%d line%d token%d", i, j, rng.Intn(5))
		}
		docs[fmt.Sprintf("doc%d", i)] = lines
	}
	type snap map[string]string
	var snaps []snap
	for rev := 0; rev < 15; rev++ {
		sn := snap{}
		for title, lines := range docs {
			if rng.Intn(3) == 0 {
				k := rng.Intn(len(lines))
				lines[k] = fmt.Sprintf("%s edited@%d", lines[k], rev)
				docs[title] = lines
			}
			sn[title] = strings.Join(lines, "\n")
		}
		snaps = append(snaps, sn)
		s.Commit(sn)
	}
	for i, sn := range snaps {
		for title, want := range sn {
			got, ok := s.Checkout(title, Revision(i+1))
			if !ok || got != want {
				t.Fatalf("checkout %s@%d mismatch", title, i+1)
			}
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SavingsRatio() <= 1.5 {
		t.Fatalf("savings ratio %v too low for low-churn snapshots", st.SavingsRatio())
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewStore()
	st := s.Stats()
	if st.StoredBytes() != 0 || st.SavingsRatio() != 1 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := NewStore()
	s.Commit(map[string]string{"doc": "a\nb\nc"})
	s.Commit(map[string]string{"doc": "a\nB\nc"})
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				if _, ok := s.Checkout("doc", 2); !ok {
					t.Error("checkout failed")
				}
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
