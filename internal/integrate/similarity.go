// Package integrate is the information-integration (II) library of the
// processing layer: string similarity measures, attribute/schema matching
// ("location" vs "address"), and entity resolution ("David Smith" vs
// "D. Smith"), with match candidates that can be confirmed or rejected by
// human intervention. The paper's central integration examples are
// exactly these two.
package integrate

import (
	"sort"
	"strings"
)

// Levenshtein returns the edit distance between two strings (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes edit distance into [0,1].
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	d := Levenshtein(a, b)
	m := maxInt(len([]rune(a)), len([]rune(b)))
	return 1 - float64(d)/float64(m)
}

// Jaro returns the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := maxInt(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := maxInt(0, i-window)
		hi := minInt(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions.
	trans := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (p=0.1, max 4).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// qgrams returns the multiset of q-grams of s (padded).
func qgrams(s string, q int) map[string]int {
	padded := strings.Repeat("#", q-1) + strings.ToLower(s) + strings.Repeat("#", q-1)
	out := map[string]int{}
	runes := []rune(padded)
	for i := 0; i+q <= len(runes); i++ {
		out[string(runes[i:i+q])]++
	}
	return out
}

// QgramJaccard returns the Jaccard similarity of trigram sets.
func QgramJaccard(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	ga, gb := qgrams(a, 3), qgrams(b, 3)
	inter, union := 0, 0
	for g, ca := range ga {
		cb := gb[g]
		inter += minInt(ca, cb)
		union += maxInt(ca, cb)
	}
	for g, cb := range gb {
		if _, ok := ga[g]; !ok {
			union += cb
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TokenJaccard returns Jaccard similarity over lowercased word sets.
func TokenJaccard(a, b string) float64 {
	sa := tokenSet(a)
	sb := tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, t := range strings.Fields(strings.ToLower(s)) {
		t = strings.Trim(t, ".,;:!?'\"()")
		if t != "" {
			out[t] = true
		}
	}
	return out
}

// NameSimilarity scores two person-name surface forms, understanding the
// abbreviation and comma-reversal conventions ("D. Smith", "Smith, David").
// It normalizes both names to (first, last) and combines last-name
// similarity with first-name/initial compatibility.
func NameSimilarity(a, b string) float64 {
	fa, la := normalizeName(a)
	fb, lb := normalizeName(b)
	if la == "" || lb == "" {
		return JaroWinkler(strings.ToLower(a), strings.ToLower(b))
	}
	lastSim := JaroWinkler(la, lb)
	firstSim := firstNameSim(fa, fb)
	return 0.6*lastSim + 0.4*firstSim
}

// normalizeName splits a surface form into (first, last), handling
// "Last, First", initials, and trailing disambiguation parentheticals as
// in wiki titles ("John Smith (actor)").
func normalizeName(s string) (first, last string) {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "("); i > 0 {
		s = strings.TrimSpace(s[:i])
	}
	if i := strings.Index(s, ","); i >= 0 {
		last = strings.ToLower(strings.TrimSpace(s[:i]))
		first = strings.ToLower(strings.TrimSpace(s[i+1:]))
		return first, last
	}
	parts := strings.Fields(s)
	if len(parts) == 0 {
		return "", ""
	}
	if len(parts) == 1 {
		return "", strings.ToLower(parts[0])
	}
	first = strings.ToLower(strings.Join(parts[:len(parts)-1], " "))
	last = strings.ToLower(parts[len(parts)-1])
	return first, last
}

// firstNameSim compares first names where either may be an initial.
func firstNameSim(a, b string) float64 {
	a = strings.TrimSuffix(a, ".")
	b = strings.TrimSuffix(b, ".")
	if a == "" || b == "" {
		return 0.5 // unknown first name: weak evidence either way
	}
	if a == b {
		return 1
	}
	if len(a) == 1 || len(b) == 1 {
		if a[0] == b[0] {
			return 0.85 // initial matches full name
		}
		return 0
	}
	return JaroWinkler(a, b)
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TopKSimilar returns the k candidates most similar to query under sim,
// in descending score order — the primitive behind "narrow the set of
// potential matches to a manageable number so users can spot the correct
// one" (the paper's recognition-vs-generation principle).
func TopKSimilar(query string, candidates []string, k int, sim func(a, b string) float64) []Scored {
	scored := make([]Scored, 0, len(candidates))
	for _, c := range candidates {
		scored = append(scored, Scored{Text: c, Score: sim(query, c)})
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	if k > 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// Scored is a candidate with a similarity score.
type Scored struct {
	Text  string
	Score float64
}
