package integrate

import (
	"fmt"
	"sort"
	"strings"
)

// AttributeMatch is a proposed correspondence between two attribute names
// from different extracted schemas, with a confidence score.
type AttributeMatch struct {
	A, B  string
	Score float64
}

// synonymPairs seeds the schema matcher with domain knowledge of the kind
// the paper says humans or knowledge bases supply.
var synonymPairs = map[[2]string]float64{
	{"location", "address"}:     0.9,
	{"population", "pop_total"}: 0.9,
	{"pop", "population"}:       0.85,
	{"area", "area_sq_mi"}:      0.8,
	{"name", "title"}:           0.7,
}

// SchemaMatcher proposes attribute correspondences using name similarity,
// seeded synonyms, and (optionally) value-distribution overlap.
type SchemaMatcher struct {
	// Threshold below which candidates are dropped (default 0.5).
	Threshold float64
	// Synonyms can be extended by domain developers or HI feedback.
	Synonyms map[[2]string]float64
}

// NewSchemaMatcher returns a matcher with default synonyms.
func NewSchemaMatcher() *SchemaMatcher {
	syn := map[[2]string]float64{}
	for k, v := range synonymPairs {
		syn[normPair(k[0], k[1])] = v
	}
	return &SchemaMatcher{Threshold: 0.5, Synonyms: syn}
}

// AddSynonym records a confirmed correspondence (e.g. from HI feedback).
func (m *SchemaMatcher) AddSynonym(a, b string, score float64) {
	m.Synonyms[normPair(a, b)] = score
}

func normPair(a, b string) [2]string {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// scoreNames combines synonym knowledge with string similarity. known
// reports whether the score comes from authoritative knowledge (exact
// match or a recorded synonym) rather than string heuristics.
func (m *SchemaMatcher) scoreNames(a, b string) (score float64, known bool) {
	if strings.EqualFold(a, b) {
		return 1, true
	}
	if s, ok := m.Synonyms[normPair(a, b)]; ok {
		return s, true
	}
	// Underscore-insensitive token overlap plus edit similarity.
	ta := strings.ReplaceAll(strings.ToLower(a), "_", " ")
	tb := strings.ReplaceAll(strings.ToLower(b), "_", " ")
	tok := TokenJaccard(ta, tb)
	ed := JaroWinkler(ta, tb)
	if tok > ed {
		return tok, false
	}
	return ed, false
}

// MatchAttributes proposes correspondences between two attribute sets,
// optionally using sample values per attribute to add distribution
// evidence. Each attribute of A is matched to its best candidate in B if
// the score clears the threshold; results are sorted by descending score.
func (m *SchemaMatcher) MatchAttributes(attrsA, attrsB []string, valuesA, valuesB map[string][]string) []AttributeMatch {
	var out []AttributeMatch
	for _, a := range attrsA {
		best := AttributeMatch{Score: -1}
		for _, b := range attrsB {
			s, known := m.scoreNames(a, b)
			// Blend in value-distribution evidence whenever samples exist
			// for both attributes (zero overlap is evidence against) —
			// unless the score is authoritative knowledge (exact name or
			// confirmed synonym), which heuristics must not dilute.
			if !known && valuesA != nil && valuesB != nil && len(valuesA[a]) > 0 && len(valuesB[b]) > 0 {
				s = 0.7*s + 0.3*valueOverlap(valuesA[a], valuesB[b])
			}
			if s > best.Score {
				best = AttributeMatch{A: a, B: b, Score: s}
			}
		}
		if best.Score >= m.Threshold {
			out = append(out, best)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// valueOverlap estimates distribution similarity as Jaccard of value sets.
func valueOverlap(va, vb []string) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	sa := map[string]bool{}
	for _, v := range va {
		sa[strings.ToLower(v)] = true
	}
	inter, union := 0, len(sa)
	seen := map[string]bool{}
	for _, v := range vb {
		lv := strings.ToLower(v)
		if seen[lv] {
			continue
		}
		seen[lv] = true
		if sa[lv] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// --- Entity resolution -------------------------------------------------------

// Mention is one surface occurrence of an entity to be resolved.
type Mention struct {
	ID      int
	Surface string
	Context string // e.g. home city or document title, used as weak evidence
}

// MatchPair is a proposed coreference between two mentions.
type MatchPair struct {
	A, B  int // mention IDs
	Score float64
}

// Resolver clusters mentions that refer to the same real-world entity.
type Resolver struct {
	// Threshold is the minimum pair score to link (default 0.82).
	Threshold float64
	// ContextWeight blends context similarity into the score (default 0.2).
	ContextWeight float64
	// Sim scores two surfaces (default NameSimilarity).
	Sim func(a, b string) float64
}

// NewResolver returns a resolver tuned for person names.
func NewResolver() *Resolver {
	return &Resolver{Threshold: 0.82, ContextWeight: 0.2, Sim: NameSimilarity}
}

// ScorePair scores two mentions.
func (r *Resolver) ScorePair(a, b Mention) float64 {
	s := r.Sim(a.Surface, b.Surface)
	if r.ContextWeight > 0 && a.Context != "" && b.Context != "" {
		ctx := TokenJaccard(a.Context, b.Context)
		s = (1-r.ContextWeight)*s + r.ContextWeight*ctx
	}
	return s
}

// CandidatePairs scores all pairs above a floor, sorted descending. With a
// blocking key (first letter of last name) the quadratic blowup stays
// manageable, mirroring standard ER practice.
func (r *Resolver) CandidatePairs(mentions []Mention) []MatchPair {
	blocks := map[byte][]Mention{}
	for _, m := range mentions {
		_, last := normalizeName(m.Surface)
		key := byte(0)
		if last != "" {
			key = last[0]
		}
		blocks[key] = append(blocks[key], m)
	}
	var out []MatchPair
	for _, block := range blocks {
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				s := r.ScorePair(block[i], block[j])
				if s >= r.Threshold*0.6 { // keep sub-threshold pairs for HI review
					out = append(out, MatchPair{A: block[i].ID, B: block[j].ID, Score: s})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Decision is an external (HI) verdict on a candidate pair.
type Decision struct {
	A, B  int
	Match bool
}

// Cluster groups mentions into entities: pairs scoring >= Threshold link,
// HI decisions override scores in either direction, and links propagate by
// union-find (transitive closure).
func (r *Resolver) Cluster(mentions []Mention, decisions []Decision) [][]int {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, m := range mentions {
		parent[m.ID] = m.ID
	}
	overridden := map[[2]string]bool{}
	_ = overridden

	decided := map[[2]int]bool{}
	verdict := map[[2]int]bool{}
	for _, d := range decisions {
		k := pairKey(d.A, d.B)
		decided[k] = true
		verdict[k] = d.Match
		if d.Match {
			union(d.A, d.B)
		}
	}
	for _, p := range r.CandidatePairs(mentions) {
		k := pairKey(p.A, p.B)
		if decided[k] {
			continue // HI verdict wins
		}
		if p.Score >= r.Threshold {
			union(p.A, p.B)
		}
	}
	clusters := map[int][]int{}
	for _, m := range mentions {
		root := find(m.ID)
		clusters[root] = append(clusters[root], m.ID)
	}
	out := make([][]int, 0, len(clusters))
	for _, ids := range clusters {
		sort.Ints(ids)
		out = append(out, ids)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// PairwiseF1 scores predicted clusters against gold clusters by pairwise
// precision/recall/F1 — the standard ER metric used in the feedback
// experiments (E3, E4).
func PairwiseF1(pred, gold [][]int) (precision, recall, f1 float64) {
	pp := pairSet(pred)
	gp := pairSet(gold)
	if len(pp) == 0 && len(gp) == 0 {
		return 1, 1, 1
	}
	tp := 0
	for p := range pp {
		if gp[p] {
			tp++
		}
	}
	if len(pp) > 0 {
		precision = float64(tp) / float64(len(pp))
	}
	if len(gp) > 0 {
		recall = float64(tp) / float64(len(gp))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}

func pairSet(clusters [][]int) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, c := range clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				out[pairKey(c[i], c[j])] = true
			}
		}
	}
	return out
}

// String renders a match for explanations.
func (p MatchPair) String() string {
	return fmt.Sprintf("mention %d ~ mention %d (%.2f)", p.A, p.B, p.Score)
}
