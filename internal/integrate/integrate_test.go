package integrate

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"madison", "madison", 0},
		{"smith", "smyth", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	// Symmetry and identity-of-indiscernibles on small strings.
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d1 := Levenshtein(a, b)
		d2 := Levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if s := JaroWinkler("martha", "marhta"); s < 0.94 || s > 0.97 {
		t.Fatalf("martha/marhta = %v", s) // canonical value 0.961
	}
	if s := JaroWinkler("abc", "abc"); s != 1 {
		t.Fatalf("identical = %v", s)
	}
	if s := JaroWinkler("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint = %v", s)
	}
	if s := JaroWinkler("", ""); s != 1 {
		t.Fatalf("empty = %v", s)
	}
	if s := JaroWinkler("a", ""); s != 0 {
		t.Fatalf("one empty = %v", s)
	}
}

func TestSimilarityRanges(t *testing.T) {
	pairs := [][2]string{
		{"madison", "madisno"}, {"", "x"}, {"David Smith", "D. Smith"},
		{"population", "pop_total"}, {"aa", "aaaa"},
	}
	fns := map[string]func(a, b string) float64{
		"LevenshteinSim": LevenshteinSim,
		"Jaro":           Jaro,
		"JaroWinkler":    JaroWinkler,
		"QgramJaccard":   QgramJaccard,
		"TokenJaccard":   TokenJaccard,
		"NameSimilarity": NameSimilarity,
	}
	for name, fn := range fns {
		for _, p := range pairs {
			s := fn(p[0], p[1])
			if s < 0 || s > 1.0001 {
				t.Errorf("%s(%q,%q) = %v out of range", name, p[0], p[1], s)
			}
			if s2 := fn(p[1], p[0]); s2 < s-1e-9 || s2 > s+1e-9 {
				// NameSimilarity is asymmetric only via normalization; all
				// these should be symmetric.
				t.Errorf("%s not symmetric on %v: %v vs %v", name, p, s, s2)
			}
		}
	}
}

func TestNameSimilarityPaperExample(t *testing.T) {
	// "David Smith" and "D. Smith" may refer to the same person: the score
	// must clear a resolution threshold.
	if s := NameSimilarity("David Smith", "D. Smith"); s < 0.82 {
		t.Fatalf("David Smith ~ D. Smith = %v, want >= 0.82", s)
	}
	if s := NameSimilarity("David Smith", "Smith, David"); s < 0.9 {
		t.Fatalf("comma reversal = %v", s)
	}
	// Different last names must score low.
	if s := NameSimilarity("David Smith", "David Jones"); s > 0.75 {
		t.Fatalf("different last names = %v", s)
	}
	// Conflicting initials must score low.
	if s := NameSimilarity("David Smith", "R. Smith"); s > 0.75 {
		t.Fatalf("conflicting initial = %v", s)
	}
}

func TestSchemaMatcherSynonyms(t *testing.T) {
	m := NewSchemaMatcher()
	matches := m.MatchAttributes(
		[]string{"location", "population", "founded"},
		[]string{"address", "pop_total", "founded", "area_sq_mi"},
		nil, nil)
	got := map[string]string{}
	for _, am := range matches {
		got[am.A] = am.B
	}
	if got["location"] != "address" {
		t.Fatalf("location should match address: %v", matches)
	}
	if got["population"] != "pop_total" {
		t.Fatalf("population should match pop_total: %v", matches)
	}
	if got["founded"] != "founded" {
		t.Fatalf("founded should match exactly: %v", matches)
	}
}

func TestSchemaMatcherValueEvidence(t *testing.T) {
	m := NewSchemaMatcher()
	m.Threshold = 0.4
	valuesA := map[string][]string{"city": {"Madison", "Chicago", "Denver"}}
	valuesB := map[string][]string{
		"municipality": {"Madison", "Chicago", "Boston"},
		"mayor":        {"Paul Soglin", "Lori Lightfoot"},
	}
	matches := m.MatchAttributes([]string{"city"}, []string{"municipality", "mayor"}, valuesA, valuesB)
	if len(matches) == 0 || matches[0].B != "municipality" {
		t.Fatalf("value overlap should pick municipality: %v", matches)
	}
}

func TestSchemaMatcherAddSynonym(t *testing.T) {
	m := NewSchemaMatcher()
	m.Threshold = 0.8
	if got := m.MatchAttributes([]string{"temp"}, []string{"heat_level"}, nil, nil); len(got) != 0 {
		t.Fatalf("unexpected match: %v", got)
	}
	m.AddSynonym("temp", "heat_level", 0.95) // HI confirmed
	got := m.MatchAttributes([]string{"temp"}, []string{"heat_level"}, nil, nil)
	if len(got) != 1 || got[0].Score != 0.95 {
		t.Fatalf("synonym not honoured: %v", got)
	}
}

func TestResolverClusterPaperExample(t *testing.T) {
	mentions := []Mention{
		{ID: 0, Surface: "David Smith", Context: "Madison, Wisconsin"},
		{ID: 1, Surface: "D. Smith", Context: "Madison, Wisconsin"},
		{ID: 2, Surface: "Smith, David", Context: "Madison, Wisconsin"},
		{ID: 3, Surface: "Sarah Johnson", Context: "Chicago"},
		{ID: 4, Surface: "S. Johnson", Context: "Chicago"},
		{ID: 5, Surface: "Robert Brown", Context: "Denver"},
	}
	r := NewResolver()
	clusters := r.Cluster(mentions, nil)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters: %v", len(clusters), clusters)
	}
	if len(clusters[0]) != 3 || clusters[0][0] != 0 {
		t.Fatalf("Smith cluster: %v", clusters)
	}
}

func TestResolverHIDecisionsOverride(t *testing.T) {
	mentions := []Mention{
		{ID: 0, Surface: "David Smith"},
		{ID: 1, Surface: "D. Smith"},
		{ID: 2, Surface: "Robert Smith"},
	}
	r := NewResolver()
	// Without HI, "D. Smith" would link to "David Smith" (initial match).
	// A human says mention 1 is NOT mention 0, and IS mention 2 (the "D."
	// turned out to abbreviate a middle name of Robert, say).
	clusters := r.Cluster(mentions, []Decision{
		{A: 0, B: 1, Match: false},
		{A: 1, B: 2, Match: true},
	})
	// 1 and 2 together; "David Smith" vs "Robert Smith" is below
	// threshold, so we expect {0}, {1,2}.
	if len(clusters) != 2 {
		t.Fatalf("clusters: %v", clusters)
	}
	if len(clusters[0]) != 1 || clusters[0][0] != 0 {
		t.Fatalf("mention 0 should be alone: %v", clusters)
	}
	if len(clusters[1]) != 2 {
		t.Fatalf("mentions 1,2 should merge: %v", clusters)
	}
}

func TestCandidatePairsOrderingAndBlocking(t *testing.T) {
	mentions := []Mention{
		{ID: 0, Surface: "David Smith"},
		{ID: 1, Surface: "D. Smith"},
		{ID: 2, Surface: "Zoe Albright"}, // different block
	}
	r := NewResolver()
	pairs := r.CandidatePairs(mentions)
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Score < pairs[i].Score {
			t.Fatal("pairs not sorted by score")
		}
	}
	for _, p := range pairs {
		if p.B == 2 || p.A == 2 {
			t.Fatalf("blocking failed: cross-block pair %v", p)
		}
	}
}

func TestPairwiseF1(t *testing.T) {
	gold := [][]int{{0, 1, 2}, {3, 4}}
	perfect := [][]int{{0, 1, 2}, {3, 4}}
	p, r, f1 := PairwiseF1(perfect, gold)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("perfect: %v %v %v", p, r, f1)
	}
	// Split cluster: misses pairs (recall < 1), no wrong pairs (precision 1).
	split := [][]int{{0, 1}, {2}, {3, 4}}
	p, r, f1 = PairwiseF1(split, gold)
	if p != 1 || r >= 1 || f1 >= 1 {
		t.Fatalf("split: %v %v %v", p, r, f1)
	}
	// Over-merged: extra pairs (precision < 1), full recall.
	merged := [][]int{{0, 1, 2, 3, 4}}
	p, r, f1 = PairwiseF1(merged, gold)
	if r != 1 || p >= 1 {
		t.Fatalf("merged: %v %v %v", p, r, f1)
	}
	// Both empty (all singletons).
	p, r, f1 = PairwiseF1([][]int{{0}, {1}}, [][]int{{0}, {1}})
	if f1 != 1 {
		t.Fatalf("singletons: %v %v %v", p, r, f1)
	}
}

func TestTopKSimilar(t *testing.T) {
	got := TopKSimilar("madison", []string{"madisno", "chicago", "madison", "boston"}, 2, JaroWinkler)
	if len(got) != 2 || got[0].Text != "madison" {
		t.Fatalf("topk: %v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("not sorted")
	}
	all := TopKSimilar("x", []string{"a", "b"}, 0, JaroWinkler)
	if len(all) != 2 {
		t.Fatalf("k=0 should return all: %v", all)
	}
}

func TestQgramJaccardBasics(t *testing.T) {
	if s := QgramJaccard("night", "nacht"); s <= 0 || s >= 1 {
		t.Fatalf("night/nacht = %v", s)
	}
	if s := QgramJaccard("same", "same"); s != 1 {
		t.Fatalf("identical = %v", s)
	}
}

func TestTokenJaccardBasics(t *testing.T) {
	if s := TokenJaccard("Madison, Wisconsin", "madison wisconsin"); s != 1 {
		t.Fatalf("punctuation/case fold = %v", s)
	}
	if s := TokenJaccard("a b", "b c"); s < 0.3 || s > 0.34 {
		t.Fatalf("partial overlap = %v", s)
	}
}
