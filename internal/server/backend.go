package server

import (
	"context"

	"repro/internal/alert"
	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/search"
)

// Backend is the serving surface the front end multiplexes onto: the
// DGE exploitation modes plus the lifecycle and vitals the health
// endpoint reports. A single *core.System satisfies it, and so does a
// *shard.ShardedSystem — the daemon picks one at startup and the wire
// protocol is identical either way (sharded responses may additionally
// carry a Degraded marker when shards are down).
type Backend interface {
	KeywordSearch(ctx context.Context, query string, k int) ([]search.Hit, error)
	AskGuided(ctx context.Context, query string, k int) (*core.GuidedAnswer, error)
	SQL(ctx context.Context, query string) (*rdbms.ResultSet, error)
	Browse(ctx context.Context) (*browse.Browser, error)
	Subscribe(sub alert.Subscription) (int, error)
	CorrectValue(ctx context.Context, user, entity, attribute, qualifier, newValue string) error
	ExplainFact(ctx context.Context, entity, attribute, qualifier string) (string, error)

	InFlightOps() int
	Closing() bool
	ExtractedRows() (int, error)
	EngineStats() core.EngineStats
	Close() error
}

// shardedBackend is the optional topology surface a partitioned backend
// exposes; health reports it when present.
type shardedBackend interface {
	Shards() int
	DownShards() []int
}
