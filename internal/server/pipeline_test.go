package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/uql"
)

// rawConn is a test helper speaking the framed protocol directly, so a
// test controls request IDs and response read order.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return &rawConn{t: t, conn: conn}
}

func (rc *rawConn) send(req *Request) {
	rc.t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		rc.t.Fatal(err)
	}
	if err := writeFrame(rc.conn, payload); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) recv() *Response {
	rc.t.Helper()
	raw, err := readFrame(rc.conn, DefaultMaxFrame)
	if err != nil {
		rc.t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		rc.t.Fatal(err)
	}
	return &resp
}

// TestServerPipeliningOutOfOrder: two requests pipelined on one
// connection, the first stalled inside the engine behind a table lock,
// the second fast. The fast one's response arrives first — proof the
// per-request dispatch removed head-of-line blocking — and the stalled
// one completes after the lock releases, correlated by ID.
func TestServerPipeliningOutOfOrder(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})
	rc := dialRaw(t, addr)

	// Stall writer-path statements: hold the extracted table's lock.
	tx := sys.DB.Begin()
	if _, err := tx.Insert(core.TableName, uql.StoreRow(uql.Row{
		Entity: "Blocktown", Attribute: "temperature", Qualifier: "July", Value: "1", Conf: 1,
	})); err != nil {
		t.Fatal(err)
	}

	rc.send(&Request{ID: 7, Op: OpSQL, SQL: "DELETE FROM extracted WHERE entity = 'nobody'", TimeoutMs: 30_000})
	rc.send(&Request{ID: 8, Op: OpSearch, Query: "temperature", K: 3})

	first := rc.recv()
	if first.ID != 8 || !first.OK {
		t.Fatalf("first response: id=%d ok=%v err=%+v (want the fast request, id 8)",
			first.ID, first.OK, first.Err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	second := rc.recv()
	if second.ID != 7 || !second.OK {
		t.Fatalf("second response: id=%d ok=%v err=%+v (want the stalled request, id 7)",
			second.ID, second.OK, second.Err)
	}
}

// TestServerOrderedModeID0: requests with ID 0 select the legacy ordered
// mode — executed inline, responses strictly in request order.
func TestServerOrderedModeID0(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})
	rc := dialRaw(t, addr)

	rc.send(&Request{Op: OpSQL, SQL: "SELECT COUNT(*) FROM extracted"})
	rc.send(&Request{Op: OpSearch, Query: "temperature", K: 3})

	first := rc.recv()
	if first.ID != 0 || !first.OK || first.Result == nil {
		t.Fatalf("first ordered response: id=%d ok=%v (want the SQL result)", first.ID, first.OK)
	}
	second := rc.recv()
	if second.ID != 0 || !second.OK || second.Hits == nil {
		t.Fatalf("second ordered response: id=%d ok=%v (want the search hits)", second.ID, second.OK)
	}
}

// TestClientConcurrentMultiplex: many goroutines share one Client; every
// call gets its own matching response over the single multiplexed
// connection.
func TestClientConcurrentMultiplex(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})
	cli := dialTest(t, addr)

	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perG; i++ {
				switch i % 3 {
				case 0:
					if _, err := cli.Search(ctx, "temperature", 3); err != nil {
						errs <- fmt.Errorf("search: %w", err)
					}
				case 1:
					rs, err := cli.SQL(ctx, "SELECT COUNT(*) FROM extracted")
					if err != nil {
						errs <- fmt.Errorf("sql: %w", err)
					} else if len(rs.Rows) != 1 {
						errs <- fmt.Errorf("sql rows: %d", len(rs.Rows))
					}
				case 2:
					if _, err := cli.Health(ctx); err != nil {
						errs <- fmt.Errorf("health: %w", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
