package server

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

// The drain and crash suites exercise a real unidbd process: TestMain
// re-execs this test binary in "child" mode, where it runs RunDaemon —
// the same code path cmd/unidbd compiles — so SIGTERM and SIGKILL hit an
// actual process with an actual socket and an actual flock on the data
// directory.

func TestMain(m *testing.M) {
	if os.Getenv("UNIDBD_CHILD") == "1" {
		os.Exit(daemonChildMain())
	}
	os.Exit(m.Run())
}

// childCorpus is the corpus shape both the child daemon and the parent's
// in-process reopens use, so reopen checks see the daemon's exact system.
var childCorpus = synth.Config{
	Seed: 7, Cities: 12, People: 4, Filler: 6, MentionsPerPerson: 2,
}

func daemonChildMain() int {
	err := RunDaemon(DaemonConfig{
		Addr:    "127.0.0.1:0",
		DataDir: os.Getenv("UNIDBD_DATA"),
		Cities:  childCorpus.Cities, People: childCorpus.People,
		Filler: childCorpus.Filler, Seed: childCorpus.Seed,
		Workers: 2,
		Server:  Options{DrainTimeout: 5 * time.Second},
		Out:     os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unidbd child:", err)
		return 1
	}
	return 0
}

// daemonProc is a running child daemon plus its captured output.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string

	mu  sync.Mutex
	log strings.Builder
}

func (p *daemonProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.String()
}

// startDaemon re-execs the test binary as a unidbd child over dataDir
// and waits for it to announce its listen address.
func startDaemon(t *testing.T, dataDir string) *daemonProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "UNIDBD_CHILD=1", "UNIDBD_DATA="+dataDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; lifecycle lines carry prefixes
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.log.WriteString(line + "\n")
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "unidbd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	select {
	case p.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never announced its address; output so far:\n%s", p.output())
	}
	return p
}

// wait returns the child's exit code, failing the test if it does not
// exit in time.
func (p *daemonProc) wait(t *testing.T) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("waiting for daemon: %v", err)
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("daemon did not exit; output:\n%s", p.output())
	}
	return -1
}

// hashDBFiles fingerprints every database file under dir/db. Warm
// snapshots (dir/warm) are excluded on purpose: SaveWarmState writes a
// fresh snapshot on every clean close by design; the zero-write warm
// start contract is about the database files.
func hashDBFiles(t *testing.T, dataDir string) map[string]string {
	t.Helper()
	dbDir := filepath.Join(dataDir, "db")
	hashes := map[string]string{}
	err := filepath.Walk(dbDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return err
		}
		rel, _ := filepath.Rel(dbDir, path)
		hashes[rel] = hex.EncodeToString(h.Sum(nil))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hashes
}

// TestDaemonSIGTERMDrain is the graceful-drain contract end to end:
// SIGTERM under live traffic exits 0 with a clean-drain message, and the
// data directory it leaves behind warm-reopens with zero writes to the
// database files.
func TestDaemonSIGTERMDrain(t *testing.T) {
	dataDir := t.TempDir()

	// First life: serve mixed traffic, then SIGTERM mid-stream.
	p := startDaemon(t, dataDir)
	cli, err := Dial(p.addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Search(ctx, "temperature", 5); err != nil {
		t.Fatalf("search against daemon: %v", err)
	}
	if _, err := cli.SQL(ctx, "SELECT COUNT(*) FROM extracted"); err != nil {
		t.Fatalf("sql against daemon: %v", err)
	}
	// Traffic still in flight while the signal lands.
	var trafficWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		trafficWG.Add(1)
		go func() {
			defer trafficWG.Done()
			c, err := Dial(p.addr, 5*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				// Errors are expected once draining begins; the contract
				// under test is the daemon's exit, not these requests.
				if _, err := c.Search(ctx, "population", 3); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p.wait(t); code != 0 {
		t.Fatalf("SIGTERM exit code = %d, want 0; output:\n%s", code, p.output())
	}
	trafficWG.Wait()
	out := p.output()
	if !strings.Contains(out, "drained and closed cleanly") {
		t.Fatalf("no clean-drain message in output:\n%s", out)
	}

	// Second life: the daemon must come back warm and, doing no writes,
	// leave the database files byte-identical on the next clean close.
	before := hashDBFiles(t, dataDir)
	if len(before) == 0 {
		t.Fatal("no database files written by the first life")
	}
	p2 := startDaemon(t, dataDir)
	if !strings.Contains(p2.output(), "reopened=true warm=true") {
		t.Fatalf("second life not a warm reopen; output:\n%s", p2.output())
	}
	cli2, err := Dial(p2.addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cli2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExtractedRows == 0 {
		t.Fatal("warm reopen lost the extracted rows")
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := p2.wait(t); code != 0 {
		t.Fatalf("second life exit code = %d; output:\n%s", code, p2.output())
	}
	after := hashDBFiles(t, dataDir)
	if len(before) != len(after) {
		t.Fatalf("db file set changed across warm cycle: %v -> %v", before, after)
	}
	for name, h := range before {
		if after[name] != h {
			t.Errorf("db file %s rewritten during zero-write warm cycle", name)
		}
	}
}

// TestDaemonKill9Durability: every response the daemon acked before
// being SIGKILLed must be durable. A client streams INSERTs recording
// each ack; the process dies mid-traffic; the directory reopens
// in-process (the flock dies with the process) and every acked row must
// be present.
func TestDaemonKill9Durability(t *testing.T) {
	dataDir := t.TempDir()
	p := startDaemon(t, dataDir)

	cli, err := Dial(p.addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var mu sync.Mutex
	var acked []int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sql := fmt.Sprintf(
				"INSERT INTO extracted VALUES ('kill9-%d', 'probe', 'q', '%d', %d.0, 1.0)",
				i, i, i)
			if _, err := cli.SQL(ctx, sql); err != nil {
				return // the kill severed the connection; unacked, not counted
			}
			mu.Lock()
			acked = append(acked, i)
			mu.Unlock()
		}
	}()

	// Let a batch of acks accumulate, then kill without ceremony.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 20 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if code := p.wait(t); code == 0 {
		t.Fatal("SIGKILLed daemon exited 0")
	}
	mu.Lock()
	final := append([]int(nil), acked...)
	mu.Unlock()
	if len(final) == 0 {
		t.Fatal("no inserts were acked before the kill")
	}

	// Reopen the directory this process — the dead daemon's flock is
	// gone — and audit every acked row.
	corpus, _ := synth.Generate(childCorpus)
	setup := func(s *core.System) error {
		_, err := s.Generate(context.Background(), daemonProgram, uql.Options{})
		return err
	}
	sys, rep, err := core.OpenDir(dataDir, core.Config{Corpus: corpus, Workers: 2}, setup)
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer sys.Close()
	if !rep.Reopened {
		t.Fatal("kill -9 left a directory that did not reopen from disk")
	}
	for _, id := range final {
		rs, err := sys.SQL(ctx, fmt.Sprintf(
			"SELECT value FROM extracted WHERE entity = 'kill9-%d'", id))
		if err != nil {
			t.Fatalf("auditing acked insert %d: %v", id, err)
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].String() != fmt.Sprintf("%d", id) {
			t.Errorf("acked insert %d lost after kill -9 (rows=%v)", id, rs.Rows)
		}
	}
	t.Logf("all %d acked inserts survived kill -9", len(final))
}
