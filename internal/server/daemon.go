package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/synth"
	"repro/internal/uql"
)

// DaemonConfig assembles a full unidbd instance: corpus, system, server.
// It is shared between cmd/unidbd and the integration tests, so the
// binary the fault and crash suites exercise is the binary users run.
type DaemonConfig struct {
	// Addr to listen on ("127.0.0.1:0" picks a free port; the chosen
	// address is announced on Out and through Ready).
	Addr string
	// DataDir, when set, backs the system with the crash-safe on-disk
	// engine under this directory (core.OpenDir lifecycle: reopen
	// recovers, close checkpoints and snapshots warm state). Empty runs
	// in-memory.
	DataDir string

	// Shards > 1 partitions the extracted table by entity hash across
	// that many engines (shard.Open over per-shard subdirectories of
	// DataDir, or in-memory shards when DataDir is empty). The wire
	// protocol is unchanged; responses touching dead shards carry a
	// Degraded marker. 0 or 1 serves a single engine.
	Shards int

	// Synthetic corpus shape (the daemon's data source, as in cmd/unidb).
	Cities, People, Filler int
	Seed                   int64
	Workers                int
	CorruptFrac            float64

	// Server holds the robustness knobs (admission, deadlines, drain).
	Server Options

	// Out receives human-oriented lifecycle lines ("listening on ...",
	// "draining", ...). Nil discards them.
	Out io.Writer

	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (tests use it instead of parsing Out).
	Ready func(addr net.Addr)

	// Signals overrides the shutdown signal set (default SIGINT,
	// SIGTERM).
	Signals []os.Signal
}

const daemonProgram = `
EXTRACT temperature, population, founded FROM docs USING city KIND city INTO cityfacts;
STORE cityfacts INTO TABLE extracted;
`

func (cfg *DaemonConfig) withDefaults() DaemonConfig {
	out := *cfg
	if out.Addr == "" {
		out.Addr = "127.0.0.1:7407"
	}
	if out.Cities == 0 {
		out.Cities = 50
	}
	if out.People == 0 {
		out.People = 20
	}
	if out.Filler == 0 {
		out.Filler = 30
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Workers == 0 {
		out.Workers = 4
	}
	if len(out.Signals) == 0 {
		out.Signals = []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	}
	return out
}

func (cfg *DaemonConfig) logf(format string, args ...any) {
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "unidbd: "+format+"\n", args...)
	}
}

// RunDaemon opens the system, serves until a shutdown signal, then
// drains and closes. The sequence on SIGTERM is the graceful-drain
// contract: stop accepting, finish in-flight requests under the drain
// timeout, then System.Close() — which checkpoints and snapshots, so the
// next open of the same DataDir is the zero-write warm start.
func RunDaemon(cfg DaemonConfig) error {
	c := cfg.withDefaults()

	corpus, _ := synth.Generate(synth.Config{
		Seed: c.Seed, Cities: c.Cities, People: c.People, Filler: c.Filler,
		MentionsPerPerson: 2, CorruptFrac: c.CorruptFrac,
	})
	sysCfg := core.Config{Corpus: corpus, Workers: c.Workers}
	setup := func(s *core.System) error {
		_, err := s.Generate(context.Background(), daemonProgram, uql.Options{})
		return err
	}

	var sys Backend
	switch {
	case c.Shards > 1:
		ss, err := shard.Open(shard.Config{Shards: c.Shards, Dir: c.DataDir, System: sysCfg})
		if err != nil {
			return err
		}
		rows, err := ss.ExtractedRows()
		if err != nil {
			ss.Close()
			return err
		}
		if rows == 0 {
			// Fresh layout: extract once on the cluster and route each
			// partition to its owning shard (the sharded analogue of the
			// single-engine setup program).
			if _, err := ss.BulkIngest(context.Background(), "city", 0); err != nil {
				ss.Close()
				return err
			}
		}
		c.logf("sharded: %d shards, dir %q, warm=%v", c.Shards, c.DataDir, rows > 0)
		sys = ss
	case c.DataDir != "":
		s, rep, err := core.OpenDir(c.DataDir, sysCfg, setup)
		if err != nil {
			return err
		}
		sys = s
		c.logf("data dir %s: reopened=%v warm=%v", c.DataDir, rep.Reopened, rep.Warm)
	default:
		s, err := core.New(sysCfg)
		if err != nil {
			return err
		}
		if err := setup(s); err != nil {
			return err
		}
		sys = s
	}

	srv := New(sys, c.Server)
	ln, err := net.Listen("tcp", c.Addr)
	if err != nil {
		sys.Close()
		return err
	}

	// Install the shutdown handler BEFORE announcing readiness: once
	// "listening on" is out, an orchestrator may SIGTERM at any moment,
	// and an unhandled SIGTERM in that window would kill the process
	// instead of draining it.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, c.Signals...)
	defer signal.Stop(sigCh)

	c.logf("listening on %s", ln.Addr())
	if c.Ready != nil {
		c.Ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		c.logf("received %v, draining", sig)
	case err := <-serveErr:
		// Listener died without a shutdown: still close the system
		// cleanly before reporting.
		cerr := sys.Close()
		if err == nil {
			err = cerr
		}
		return err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainBudget(c.Server))
	defer cancel()
	shutdownErr := srv.Shutdown(drainCtx)
	<-serveErr // accept loop has exited by now (listener closed)
	closeErr := sys.Close()
	if shutdownErr != nil {
		return shutdownErr
	}
	if closeErr != nil {
		return closeErr
	}
	c.logf("drained and closed cleanly")
	return nil
}

func drainBudget(o Options) time.Duration {
	if o.DrainTimeout > 0 {
		return o.DrainTimeout
	}
	return 10 * time.Second
}
