package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the typed shed signal: admission control refused the
// request (or connection) because the server is at capacity. Clients see
// it from the Go client as a wrapped error; on the wire it is
// CodeOverloaded. Shedding is immediate — the server never queues work it
// cannot start promptly.
var ErrOverloaded = errors.New("server: overloaded")

// ErrDraining is returned by ops arriving while the server shuts down.
var ErrDraining = errors.New("server: draining")

// Options tunes the server's robustness machinery. Zero values select the
// documented defaults.
type Options struct {
	// MaxInFlight bounds concurrently executing requests across all
	// connections (the admission semaphore). Requests beyond it are shed
	// with CodeOverloaded immediately. Default 64.
	MaxInFlight int
	// MaxConns bounds accepted connections; beyond it, new connections
	// receive one CodeOverloaded frame and are closed (the bounded accept
	// queue). Default 1024.
	MaxConns int
	// MaxFrameBytes bounds a request frame. Default DefaultMaxFrame.
	MaxFrameBytes int
	// IdleTimeout bounds how long a connection may sit between requests
	// before the server hangs up (slowloris defense: a reader stuck
	// mid-frame is bounded by the same clock). Default 30s.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. Default 10s.
	WriteTimeout time.Duration
	// DefaultRequestTimeout applies when a request carries no timeout;
	// MaxRequestTimeout clamps what a request may ask for. Defaults 10s
	// and 60s.
	DefaultRequestTimeout time.Duration
	MaxRequestTimeout     time.Duration
	// DrainTimeout bounds graceful shutdown: connections still busy after
	// it are force-closed. Default 10s.
	DrainTimeout time.Duration
	// ErrorLog receives per-connection fault notes (panics, protocol
	// violations). Nil discards them.
	ErrorLog io.Writer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 64
	}
	if out.MaxConns <= 0 {
		out.MaxConns = 1024
	}
	if out.MaxFrameBytes <= 0 {
		out.MaxFrameBytes = DefaultMaxFrame
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 30 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 10 * time.Second
	}
	if out.DefaultRequestTimeout <= 0 {
		out.DefaultRequestTimeout = 10 * time.Second
	}
	if out.MaxRequestTimeout <= 0 {
		out.MaxRequestTimeout = 60 * time.Second
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 10 * time.Second
	}
	return out
}

// Server serves the user layer over TCP. Create with New, start with
// Serve, stop with Shutdown.
type Server struct {
	sys  Backend
	opts Options

	sem chan struct{} // admission semaphore: one token per executing request

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	ln       net.Listener
	draining bool

	connWG sync.WaitGroup // one per live connection handler

	admitted atomic.Int64
	shed     atomic.Int64
	served   atomic.Int64
}

// New builds a server over an opened backend (a single System or a
// sharded one). The server does not own the backend: closing it after
// Shutdown is the caller's job (RunDaemon wires the full lifecycle).
func New(sys Backend, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		sys:   sys,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInFlight),
		conns: map[net.Conn]struct{}{},
	}
}

// Serve accepts connections on ln until Shutdown (or a fatal listener
// error). It returns nil after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			// Transient accept errors (per-connection resets) should not
			// kill the accept loop; anything persistent will repeat and
			// the daemon's supervisor sees the log.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if !s.registerConn(conn) {
			// Over the connection cap (or draining): tell the client why,
			// bounded by the write timeout, and hang up. This is the
			// bounded accept queue — excess connections are refused in
			// O(1), never parked.
			s.shed.Add(1)
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			writeJSONFrame(conn, &Response{OK: false, Err: &WireError{
				Code: CodeOverloaded, Message: "connection limit reached",
			}})
			conn.Close()
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// registerConn admits a connection under the cap; false means refuse.
func (s *Server) registerConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.opts.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) unregisterConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ActiveConns reports live connections (diagnostics and tests).
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Stats reports admission counters (admitted, shed, served).
func (s *Server) Stats() (admitted, shed, served int64) {
	return s.admitted.Load(), s.shed.Load(), s.served.Load()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.ErrorLog != nil {
		fmt.Fprintf(s.opts.ErrorLog, "unidbd: "+format+"\n", args...)
	}
}

// serveConn runs one connection's request loop. Requests carrying a
// nonzero ID are pipelined: each executes in its own goroutine and its
// response is written (under the connection's write mutex) whenever it
// finishes, so a slow statement never head-of-line-blocks the fast ones
// behind it — clients correlate by ID. Requests with ID 0 select the
// legacy ordered mode: they execute inline, one at a time, and responses
// come back in request order. The admission semaphore still bounds total
// concurrent execution across all connections either way.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.unregisterConn(conn)
	defer conn.Close()
	// Wait for in-flight pipelined requests before closing the conn, so
	// an idle-timeout or drain-poked exit of the read loop never yanks
	// the socket from under a response still being produced. (Runs before
	// the Close defer above; a force-closed conn during Shutdown just
	// makes their writes fail fast.)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	// Per-connection panic recovery: a handler bug poisons one
	// connection, not the process. The deferred recover also covers the
	// framing code against malformed input surprises.
	defer func() {
		if r := recover(); r != nil {
			s.logf("panic on %s: %v", conn.RemoteAddr(), r)
		}
	}()
	// writeMu serializes response frames from concurrent request
	// goroutines; a frame is one atomic unit on the wire.
	var writeMu sync.Mutex

	for {
		if s.isDraining() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		payload, err := readFrame(conn, s.opts.MaxFrameBytes)
		if err != nil {
			// A too-large frame gets a typed refusal before the hangup;
			// everything else (EOF, timeout, mid-frame disconnect) is a
			// dead or hostile peer and is just dropped. A read that was
			// woken by Shutdown's deadline poke lands here too and exits
			// via the draining check above on the next iteration — or
			// right now, since the conn is closing anyway.
			if errors.Is(err, ErrFrameTooLarge) {
				s.respond(conn, &writeMu, &Response{OK: false, Err: &WireError{
					Code: CodeTooLarge, Message: err.Error(),
				}})
			}
			return
		}
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			// Malformed JSON inside a well-formed frame: the stream is
			// still synchronized, so reject the request and keep the
			// connection — a buggy client gets diagnostics, not a
			// mysterious hangup.
			if !s.respond(conn, &writeMu, &Response{OK: false, Err: &WireError{
				Code: CodeBadRequest, Message: "malformed request: " + err.Error(),
			}}) {
				return
			}
			continue
		}
		if req.ID != 0 {
			reqWG.Add(1)
			go func(req Request) {
				defer reqWG.Done()
				defer func() {
					if r := recover(); r != nil {
						s.logf("panic on %s (request %d): %v", conn.RemoteAddr(), req.ID, r)
					}
				}()
				// A failed write means the connection is dead; the read
				// loop will find out on its next read.
				s.respond(conn, &writeMu, s.execute(&req))
			}(req)
			continue
		}
		if !s.respond(conn, &writeMu, s.execute(&req)) {
			return
		}
	}
}

// respond writes one response frame under the connection's write mutex
// and the write deadline; false means the connection is unusable.
func (s *Server) respond(conn net.Conn, writeMu *sync.Mutex, resp *Response) bool {
	writeMu.Lock()
	defer writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	if err := writeJSONFrame(conn, resp); err != nil {
		return false
	}
	s.served.Add(1)
	return true
}

// execute runs one request under admission control and its deadline.
func (s *Server) execute(req *Request) *Response {
	start := time.Now()
	resp := s.executeInner(req)
	resp.ID = req.ID
	resp.Elapsed = time.Since(start).Microseconds()
	return resp
}

func (s *Server) executeInner(req *Request) *Response {
	// Health is the one op that bypasses admission control: it must keep
	// answering while the server sheds load, or overload becomes
	// unobservable exactly when observing it matters.
	if req.Op == OpHealth {
		return s.handleHealth()
	}
	if s.isDraining() {
		return errResponse(ErrDraining)
	}
	// Admission: take a token without waiting. No token, no service —
	// the client learns immediately and can back off, instead of parking
	// in an unbounded queue that melts latency for everyone.
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		return errResponse(ErrOverloaded)
	}
	defer func() { <-s.sem }()
	s.admitted.Add(1)

	timeout := s.opts.DefaultRequestTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.opts.MaxRequestTimeout {
		timeout = s.opts.MaxRequestTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.handle(ctx, req)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: stop accepting, wake idle connection
// readers, let busy connections finish their current request, and
// force-close whatever remains when ctx (or DrainTimeout, whichever is
// sooner) expires. It does not close the System — the daemon does that
// after the drain, so in-flight requests never race the engine teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	// Poke every connection blocked in a read: an expired read deadline
	// wakes it with a timeout error and its handler exits via the
	// draining flag. Connections mid-request are untouched — their
	// handler checks draining only between requests.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	limit := time.NewTimer(s.opts.DrainTimeout)
	defer limit.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	case <-limit.C:
	}
	// Drain budget exhausted: sever the stragglers. Their handlers die
	// on the closed conn and the WaitGroup unblocks.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-done
	return fmt.Errorf("server: drain timed out; %w", os.ErrDeadlineExceeded)
}
