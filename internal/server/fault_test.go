package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// The network fault harness: each test arms one pathology on an
// attacker connection (through FaultConn) and asserts two things — the
// server survives it, and a healthy client talking concurrently keeps
// getting correct answers.

// healthyProbe runs requests on a fresh client until stop is closed,
// failing the test on any error.
func healthyProbe(t *testing.T, addr string, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	cli := dialTest(t, addr)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, err := cli.Search(ctx, "temperature Madison", 3)
			cancel()
			if err != nil {
				t.Errorf("healthy client failed during fault: %v", err)
				return
			}
		}
	}()
}

func encodeRequest(t *testing.T, req *Request) []byte {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 4+len(payload))
	frame[0] = byte(len(payload) >> 24)
	frame[1] = byte(len(payload) >> 16)
	frame[2] = byte(len(payload) >> 8)
	frame[3] = byte(len(payload))
	copy(frame[4:], payload)
	return frame
}

// TestFaultSlowloris: an attacker dribbles a frame one byte at a time,
// far slower than the idle timeout. The server must cut it off on the
// read deadline instead of holding the connection (and any buffer)
// forever — while a healthy client stays served.
func TestFaultSlowloris(t *testing.T) {
	sys := newTestSystem(t, 12)
	srv, addr := startServer(t, sys, Options{IdleTimeout: 300 * time.Millisecond})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	healthyProbe(t, addr, stop, &wg)

	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	attacker := NewFaultConn(raw)
	attacker.ChunkBytes = 1
	attacker.ChunkDelay = 20 * time.Millisecond
	defer raw.Close()

	frame := encodeRequest(t, &Request{ID: 1, Op: OpSearch, Query: "x", K: 1})
	// The trickle takes len(frame)*20ms >> IdleTimeout; the server should
	// hang up mid-frame. The write eventually fails (peer reset) or
	// completes into a dead socket — either is fine for the attacker.
	attacker.Write(frame)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a slowloris frame instead of dropping it")
	}

	close(stop)
	wg.Wait()
	if srv.ActiveConns() > 2 { // healthy probe + slack for teardown timing
		t.Fatalf("connections leaked: %d", srv.ActiveConns())
	}
}

// TestFaultMidFrameDisconnect: the attacker dies halfway through a
// frame. The server must discard the partial frame and connection
// without disturbing anyone else.
func TestFaultMidFrameDisconnect(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	healthyProbe(t, addr, stop, &wg)

	for i := 0; i < 8; i++ {
		raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		attacker := NewFaultConn(raw)
		frame := encodeRequest(t, &Request{ID: 1, Op: OpSQL, SQL: "SELECT COUNT(*) FROM extracted"})
		attacker.CutAfterBytes = len(frame) / 2
		attacker.Write(frame) // severs itself mid-frame
	}

	close(stop)
	wg.Wait()
}

// TestFaultGarbageBytes: raw garbage instead of a frame. The length
// prefix decodes to nonsense; the server must refuse and close without
// crashing.
func TestFaultGarbageBytes(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	healthyProbe(t, addr, stop, &wg)

	for i := 0; i < 8; i++ {
		raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		attacker := NewFaultConn(raw)
		attacker.GarbagePrefix = []byte{0xff, 0xfe, 0xfd, 0xfc, 0x00, 0x01, 0x02}
		attacker.Write(encodeRequest(t, &Request{ID: 1, Op: OpHealth}))
		raw.SetReadDeadline(time.Now().Add(2 * time.Second))
		// Whatever comes back (a too-large refusal or a straight hangup),
		// the server must not serve a real response off a desynced stream.
		payload, err := readFrame(raw, DefaultMaxFrame)
		if err == nil {
			var resp Response
			if json.Unmarshal(payload, &resp) == nil && resp.OK {
				t.Fatalf("server answered OK off a desynchronized stream: %s", payload)
			}
		}
		raw.Close()
	}

	close(stop)
	wg.Wait()
}

// TestFaultHalfClose: the client sends a request and FINs its write
// side. The server should still deliver the response (the read side is
// open), then reap the connection.
func TestFaultHalfClose(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{IdleTimeout: 500 * time.Millisecond})

	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	fc := NewFaultConn(raw)
	if _, err := fc.Write(encodeRequest(t, &Request{ID: 1, Op: OpHealth})); err != nil {
		t.Fatal(err)
	}
	if err := fc.HalfClose(); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(raw, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("no response after half-close: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil || !resp.OK {
		t.Fatalf("response after half-close: %s", payload)
	}
}

// TestFaultSwarm: a mob of attackers (trickles, cutters, garbage) and a
// crowd of honest clients at the same time. Every honest request must
// succeed; the server must end with no leaked connections.
func TestFaultSwarm(t *testing.T) {
	sys := newTestSystem(t, 12)
	srv, addr := startServer(t, sys, Options{IdleTimeout: 300 * time.Millisecond})

	var attackers sync.WaitGroup
	for i := 0; i < 12; i++ {
		attackers.Add(1)
		go func(kind int) {
			defer attackers.Done()
			raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return // refused under load is acceptable for an attacker
			}
			defer raw.Close()
			fc := NewFaultConn(raw)
			frame := encodeRequest(t, &Request{ID: 1, Op: OpSQL, SQL: "SELECT COUNT(*) FROM extracted"})
			switch kind % 3 {
			case 0:
				fc.ChunkBytes, fc.ChunkDelay = 1, 15*time.Millisecond
			case 1:
				fc.CutAfterBytes = len(frame) / 3
			case 2:
				fc.GarbagePrefix = []byte{0xde, 0xad, 0xbe, 0xef}
			}
			fc.Write(frame)
			raw.SetReadDeadline(time.Now().Add(time.Second))
			buf := make([]byte, 64)
			raw.Read(buf)
		}(i)
	}

	var honest sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		honest.Add(1)
		go func(i int) {
			defer honest.Done()
			cli, err := Dial(addr, 5*time.Second)
			if err != nil {
				errCh <- fmt.Errorf("honest dial: %w", err)
				return
			}
			defer cli.Close()
			for j := 0; j < 10; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := cli.Search(ctx, "temperature Madison", 3)
				cancel()
				if err != nil {
					errCh <- fmt.Errorf("honest client %d op %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	honest.Wait()
	attackers.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// All attacker connections reaped (allow the idle reaper a moment).
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveConns() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.ActiveConns(); n > 0 {
		t.Fatalf("%d connections leaked after the swarm", n)
	}
}
