package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/synth"
)

// The sharded wire suite proves the serving contract is backend-agnostic:
// a ShardedSystem behind the same Server answers the same protocol with
// the same bytes as a single engine, and shard loss surfaces as the
// typed degraded marker instead of connection failure.

// newShardedBackend builds a ShardedSystem over the same corpus shape as
// newTestSystem, so wire-level answers are directly comparable.
func newShardedBackend(t testing.TB, cities, shards int) *shard.ShardedSystem {
	t.Helper()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: cities, People: 5, Filler: 10, MentionsPerPerson: 2,
	})
	ss, err := shard.Open(shard.Config{
		Shards: shards,
		System: core.Config{Corpus: corpus, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.BulkIngest(context.Background(), "city", 0); err != nil {
		ss.Close()
		t.Fatal(err)
	}
	return ss
}

// TestShardedServerEndToEnd serves a 3-shard system over a real socket
// and checks every operation answers — with SQL, ask, and browse results
// byte-identical to a single-engine server over the same corpus.
func TestShardedServerEndToEnd(t *testing.T) {
	const cities = 12
	ss := newShardedBackend(t, cities, 3)
	_, shardedAddr := startServer(t, ss, Options{})
	scli := dialTest(t, shardedAddr)

	// The single-engine reference ingests through the same bulk path, so
	// both servers hold the identical extracted table.
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: cities, People: 5, Filler: 10, MentionsPerPerson: 2,
	})
	single, err := core.New(core.Config{Corpus: corpus, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.BulkIngest(context.Background(), "city", 0); err != nil {
		t.Fatal(err)
	}
	_, singleAddr := startServer(t, single, Options{})
	cli := dialTest(t, singleAddr)

	ctx := context.Background()

	h, err := scli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 3 || len(h.ShardsDown) != 0 {
		t.Fatalf("health topology: shards=%d down=%v", h.Shards, h.ShardsDown)
	}
	if h.ExtractedRows == 0 {
		t.Fatal("health: no extracted rows on sharded backend")
	}

	queries := []string{
		"SELECT entity, attribute, qualifier, value FROM extracted ORDER BY entity, attribute, qualifier, value LIMIT 40",
		"SELECT entity, value FROM extracted WHERE attribute = 'temperature' ORDER BY entity, qualifier LIMIT 15 OFFSET 5",
		"SELECT value FROM extracted WHERE attribute = 'population'",
		"SELECT DISTINCT attribute FROM extracted ORDER BY attribute",
		"SELECT COUNT(*) FROM extracted",
	}
	for _, q := range queries {
		want, err := cli.SQL(ctx, q)
		if err != nil {
			t.Fatalf("single %q: %v", q, err)
		}
		got, err := scli.SQL(ctx, q)
		if err != nil {
			t.Fatalf("sharded %q: %v", q, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%q diverged:\nsharded: %v\nsingle:  %v", q, got.Rows, want.Rows)
		}
	}

	const question = "average temperature Madison Wisconsin"
	wantAns, err := cli.Ask(ctx, question, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotAns, err := scli.Ask(ctx, question, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAns, wantAns) {
		t.Fatalf("guided answers diverged:\nsharded: %+v\nsingle:  %+v", gotAns, wantAns)
	}

	wantHits, err := cli.Search(ctx, question, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotHits, err := scli.Search(ctx, question, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHits, wantHits) {
		t.Fatalf("search hits diverged:\nsharded: %+v\nsingle:  %+v", gotHits, wantHits)
	}

	wantBr, err := cli.Browse(ctx, "attribute=temperature")
	if err != nil {
		t.Fatal(err)
	}
	gotBr, err := scli.Browse(ctx, "attribute=temperature")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBr, wantBr) {
		t.Fatalf("browse diverged:\nsharded: %+v\nsingle:  %+v", gotBr, wantBr)
	}

	// Subscribe, correct an existing fact on its owning shard, explain it.
	if _, err := scli.Subscribe(ctx, "watcher", "", "temperature", ">", 500, 0); err != nil {
		t.Fatal(err)
	}
	fact, err := scli.SQL(ctx, "SELECT entity, qualifier FROM extracted WHERE attribute = 'temperature' ORDER BY entity, qualifier LIMIT 1")
	if err != nil || len(fact.Rows) == 0 {
		t.Fatalf("sample fact: %v %+v", err, fact)
	}
	entity, qualifier := fact.Rows[0][0], fact.Rows[0][1]
	if err := scli.Correct(ctx, "editor", entity, "temperature", qualifier, "999"); err != nil {
		t.Fatalf("correct %s/%s: %v", entity, qualifier, err)
	}
	// Bulk-ingested rows enter the table below the UQL provenance graph,
	// so lineage is typed not-found — the same answer a single engine
	// built through BulkIngest gives, not an internal error.
	if _, err := scli.Explain(ctx, entity, "temperature", qualifier); !errors.Is(err, ErrNotFound) {
		t.Fatalf("explain on bulk-ingested fact: got %v, want ErrNotFound", err)
	}
}

// TestShardedServerShardLoss kills one shard of four under a live server
// and checks the wire-level degradation contract: fan-out reads return
// OK with the Degraded marker, entity-routed reads to the dead partition
// fail with the typed degraded error, keyword search stays complete, and
// health reports the dead shard — all while concurrent healthy traffic
// keeps answering within its deadlines.
func TestShardedServerShardLoss(t *testing.T) {
	ss := newShardedBackend(t, 16, 4)
	_, addr := startServer(t, ss, Options{})
	cli := dialTest(t, addr)
	ctx := context.Background()

	// Pick probe entities on both sides of the failure before it happens.
	ents, err := cli.SQL(ctx, "SELECT DISTINCT entity FROM extracted ORDER BY entity")
	if err != nil {
		t.Fatal(err)
	}
	const dead = 2
	deadEntity, liveEntity := "", ""
	for _, row := range ents.Rows {
		if ss.Owner(row[0]) == dead {
			deadEntity = row[0]
		} else {
			liveEntity = row[0]
		}
	}
	if deadEntity == "" || liveEntity == "" {
		t.Fatalf("corpus does not cover shard %d and a healthy shard: %v", dead, ents.Rows)
	}
	full, err := cli.SQL(ctx, "SELECT entity, value FROM extracted WHERE attribute = 'population' ORDER BY entity")
	if err != nil {
		t.Fatal(err)
	}

	if err := ss.KillShard(dead); err != nil {
		t.Fatal(err)
	}

	// Healthy traffic keeps flowing under its deadline for the duration.
	probeCtx, stopProbe := context.WithCancel(ctx)
	var probe sync.WaitGroup
	probeErr := make(chan error, 1)
	probe.Add(1)
	go func() {
		defer probe.Done()
		for probeCtx.Err() == nil {
			rctx, cancel := context.WithTimeout(probeCtx, 5*time.Second)
			_, err := cli.Search(rctx, "temperature Madison", 3)
			cancel()
			if err != nil && probeCtx.Err() == nil {
				select {
				case probeErr <- fmt.Errorf("healthy probe failed under shard loss: %w", err):
				default:
				}
				return
			}
		}
	}()

	// Fan-out read: OK response carrying partial data plus the marker.
	resp, err := cli.Do(ctx, &Request{Op: OpSQL, SQL: "SELECT entity, value FROM extracted WHERE attribute = 'population' ORDER BY entity"})
	if err != nil {
		t.Fatalf("degraded fan-out should still answer: %v", err)
	}
	if resp.Degraded == nil || !reflect.DeepEqual(resp.Degraded.Down, []int{dead}) || resp.Degraded.Shards != 4 {
		t.Fatalf("degraded marker: %+v", resp.Degraded)
	}
	if len(resp.Result.Rows) == 0 || len(resp.Result.Rows) >= len(full.Rows) {
		t.Fatalf("partial rows: got %d of %d", len(resp.Result.Rows), len(full.Rows))
	}
	// The partial result is exactly the healthy shards' rows: every
	// surviving entity is off the dead shard, every full-result entity
	// off the dead shard survives.
	wantRows := 0
	for _, row := range full.Rows {
		if ss.Owner(row[0]) != dead {
			wantRows++
		}
	}
	if len(resp.Result.Rows) != wantRows {
		t.Fatalf("partial rows: got %d, want %d healthy-shard rows", len(resp.Result.Rows), wantRows)
	}
	for _, row := range resp.Result.Rows {
		if ss.Owner(row[0]) == dead {
			t.Fatalf("row for dead-shard entity %q in partial result", row[0])
		}
	}

	// Entity routed to the dead shard: typed degraded failure.
	q := fmt.Sprintf("SELECT value FROM extracted WHERE entity = '%s'", deadEntity)
	if _, err := cli.SQL(ctx, q); !errors.Is(err, ErrDegraded) {
		t.Fatalf("dead-shard entity query: got %v, want ErrDegraded", err)
	}
	// Entity on a healthy shard: unaffected.
	q = fmt.Sprintf("SELECT value FROM extracted WHERE entity = '%s'", liveEntity)
	if rs, err := cli.SQL(ctx, q); err != nil || len(rs.Rows) == 0 {
		t.Fatalf("healthy-shard entity query: %v %+v", err, rs)
	}

	// Guided answer degrades to a partial result with the marker.
	aresp, err := cli.Do(ctx, &Request{Op: OpAsk, Query: "population", K: 3})
	if err != nil {
		t.Fatalf("degraded ask should still answer: %v", err)
	}
	if aresp.Degraded == nil || aresp.Guided == nil {
		t.Fatalf("degraded ask: degraded=%+v guided=%v", aresp.Degraded, aresp.Guided != nil)
	}

	// Search is replica-served from a healthy shard: complete, no marker.
	sresp, err := cli.Do(ctx, &Request{Op: OpSearch, Query: "temperature Madison", K: 3})
	if err != nil || sresp.Degraded != nil || len(sresp.Hits) == 0 {
		t.Fatalf("search under shard loss: err=%v degraded=%+v hits=%d", err, sresp.Degraded, len(sresp.Hits))
	}

	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 4 || !reflect.DeepEqual(h.ShardsDown, []int{dead}) {
		t.Fatalf("health topology under loss: shards=%d down=%v", h.Shards, h.ShardsDown)
	}

	stopProbe()
	probe.Wait()
	select {
	case err := <-probeErr:
		t.Fatal(err)
	default:
	}
}

// TestShardedDaemonLifecycle runs the real RunDaemon code path with
// Shards set — the same assembly cmd/unidbd compiles: fresh ingest into
// per-shard directories on first open, clean drain on signal, then a
// warm reopen of the same layout answering the same bytes.
func TestShardedDaemonLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	const q = "SELECT entity, attribute, qualifier, value FROM extracted ORDER BY entity, attribute, qualifier, value LIMIT 25"

	runOnce := func() (rows [][]string, shards int) {
		t.Helper()
		addrCh := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- RunDaemon(DaemonConfig{
				Addr: "127.0.0.1:0", DataDir: dataDir, Shards: 2,
				Cities: 10, People: 4, Filler: 6, Seed: 7, Workers: 2,
				Server:  Options{DrainTimeout: 5 * time.Second},
				Ready:   func(a net.Addr) { addrCh <- a.String() },
				Signals: []os.Signal{syscall.SIGUSR1},
			})
		}()
		var addr string
		select {
		case addr = <-addrCh:
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never became ready")
		}
		cli := dialTest(t, addr)
		ctx := context.Background()
		h, err := cli.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.BufferCapacity == 0 || h.BufferHits+h.BufferMisses == 0 {
			t.Fatalf("sharded health missing aggregated buffer vitals: %+v", h)
		}
		rs, err := cli.SQL(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		cli.Close()
		if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon drain: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain")
		}
		return rs.Rows, h.Shards
	}

	first, shards := runOnce()
	if shards != 2 {
		t.Fatalf("first life: %d shards, want 2", shards)
	}
	if len(first) == 0 {
		t.Fatal("first life: no rows")
	}
	second, shards := runOnce()
	if shards != 2 {
		t.Fatalf("second life: %d shards, want 2", shards)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatalf("warm reopen diverged:\nfirst:  %v\nsecond: %v", first, second)
	}
}

// TestShardedDaemonManifestMismatchTyped: the daemon layer surfaces a
// shard-count mismatch as the shard package's typed error — RunDaemon
// refuses before listening, and the caller (cmd/unidbd's exit path, this
// test) can errors.As it rather than pattern-match a message. Regression
// for the PR9 manifest refusal now that PR10 types it.
func TestShardedDaemonManifestMismatchTyped(t *testing.T) {
	dataDir := t.TempDir()
	// A layout pinned at 2 shards, without paying for a full daemon run.
	if err := os.WriteFile(filepath.Join(dataDir, "shards.json"), []byte(`{"shards":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := RunDaemon(DaemonConfig{
		Addr: "127.0.0.1:0", DataDir: dataDir, Shards: 3,
		Cities: 4, People: 2, Filler: 2, Seed: 7, Workers: 1,
		Ready: func(net.Addr) { t.Error("daemon became ready under a mismatched layout") },
	})
	if err == nil {
		t.Fatal("RunDaemon accepted a layout pinned to a different shard count")
	}
	var mm *shard.ShardCountMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("daemon error %v is not a ShardCountMismatchError", err)
	}
	if mm.Pinned != 2 || mm.Asked != 3 {
		t.Fatalf("mismatch carries pinned=%d asked=%d, want 2/3", mm.Pinned, mm.Asked)
	}
}
