package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/synth"
	"repro/internal/uql"
)

// newTestSystem builds an in-memory system with the daemon's demo
// structure generated (cities includes "Madison, Wisconsin").
func newTestSystem(t testing.TB, cities int) *core.System {
	t.Helper()
	corpus, _ := synth.Generate(synth.Config{
		Seed: 7, Cities: cities, People: 5, Filler: 10, MentionsPerPerson: 2,
	})
	sys, err := core.New(core.Config{Corpus: corpus, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Generate(context.Background(), daemonProgram, uql.Options{}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// startServer serves sys on a fresh port and tears everything down with
// the test. It accepts any Backend, so the sharded suite reuses it.
func startServer(t testing.TB, sys Backend, opts Options) (*Server, string) {
	t.Helper()
	srv := New(sys, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		sys.Close()
	})
	return srv, ln.Addr().String()
}

func dialTest(t testing.TB, addr string) *Client {
	t.Helper()
	cli, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestServerEndToEnd drives every operation over a real socket.
func TestServerEndToEnd(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})
	cli := dialTest(t, addr)
	ctx := context.Background()

	hits, err := cli.Search(ctx, "average temperature Madison Wisconsin", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Title != "Madison, Wisconsin" {
		t.Fatalf("search hits: %+v", hits)
	}

	ans, err := cli.Ask(ctx, "average temperature Madison Wisconsin", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Candidates) == 0 || ans.Answer == nil || len(ans.Answer.Rows) == 0 {
		t.Fatalf("guided answer: %+v", ans)
	}

	rs, err := cli.SQL(ctx, "SELECT COUNT(*) FROM extracted WHERE attribute = 'temperature'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0] == "0" {
		t.Fatalf("sql result: %+v", rs)
	}

	br, err := cli.Browse(ctx, "attribute=temperature")
	if err != nil {
		t.Fatal(err)
	}
	if br.Rows == 0 || !strings.Contains(br.Path, "temperature") {
		t.Fatalf("browse: %+v", br)
	}

	subID, err := cli.Subscribe(ctx, "alice", "", "temperature", ">", -1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Fatal("no subscription id")
	}

	if err := cli.Correct(ctx, "alice", "Madison, Wisconsin", "temperature", "July", "74.0"); err != nil {
		t.Fatal(err)
	}
	rs, err = cli.SQL(ctx, "SELECT value FROM extracted WHERE entity = 'Madison, Wisconsin' AND qualifier = 'July'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "74.0" {
		t.Fatalf("correction not visible: %+v", rs.Rows)
	}

	text, err := cli.Explain(ctx, "Madison, Wisconsin", "temperature", "September")
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty lineage")
	}

	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExtractedRows == 0 || h.Admitted == 0 {
		t.Fatalf("health: %+v", h)
	}
	// PR10 buffer-pool vitals ride the same health surface.
	if h.BufferCapacity == 0 || h.BufferResident == 0 || h.BufferHits+h.BufferMisses == 0 {
		t.Fatalf("health missing buffer vitals: %+v", h)
	}
	if h.BufferHitRate <= 0 || h.BufferHitRate > 1 {
		t.Fatalf("health buffer hit rate %v out of range", h.BufferHitRate)
	}

	// Typed not-found on a bogus fact.
	if err := cli.Correct(ctx, "alice", "Nowhere", "temperature", "July", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("correct(nowhere): got %v, want ErrNotFound", err)
	}
	// Typed bad request on garbage op via raw Do.
	if _, err := cli.Do(ctx, &Request{Op: "no-such-op"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op: got %v, want ErrBadRequest", err)
	}
}

// TestServerRequestDeadline: a request-supplied deadline is enforced
// mid-execution and surfaces as the typed deadline error. The statement
// is forced to outlive its 1 ms budget by a table lock the test holds
// past the deadline; once released, the scan's in-loop context polls
// fire. The statement must be a mutation: SELECTs now run against MVCC
// snapshots and never wait on locks, so only the writer path can be
// stalled this way.
func TestServerRequestDeadline(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})
	cli := dialTest(t, addr)

	tx := sys.DB.Begin()
	if _, err := tx.Insert(core.TableName, uql.StoreRow(uql.Row{
		Entity: "Blocktown", Attribute: "temperature", Qualifier: "July", Value: "1", Conf: 1,
	})); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := cli.Do(context.Background(), &Request{
			Op: OpSQL, SQL: "DELETE FROM extracted WHERE entity = 'nobody'", TimeoutMs: 1,
		})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // hold the lock well past the 1 ms budget
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("got %v, want ErrDeadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline request never returned")
	}

	// The engine is healthy afterwards: the expired statement released
	// its locks.
	rs, err := cli.SQL(context.Background(), "SELECT COUNT(*) FROM extracted")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("follow-up query: %+v", rs)
	}
}

// TestServerOverloadShed: with MaxInFlight=1 and the single slot pinned
// by a blocked request, further requests are shed immediately with the
// typed overloaded error — and health still answers.
func TestServerOverloadShed(t *testing.T) {
	sys := newTestSystem(t, 12)
	srv, addr := startServer(t, sys, Options{MaxInFlight: 1})

	// Pin the admission slot: this transaction's table lock blocks the
	// client's DELETE inside the engine while it holds the only token.
	// (A SELECT would no longer do: snapshot reads don't take locks.)
	tx := sys.DB.Begin()
	if _, err := tx.Insert(core.TableName, uql.StoreRow(uql.Row{
		Entity: "Blocktown", Attribute: "temperature", Qualifier: "July", Value: "1", Conf: 1,
	})); err != nil {
		t.Fatal(err)
	}

	blocked := dialTest(t, addr)
	blockedDone := make(chan error, 1)
	go func() {
		_, err := blocked.Do(context.Background(), &Request{
			Op: OpSQL, SQL: "DELETE FROM extracted WHERE entity = 'nobody'", TimeoutMs: 30_000,
		})
		blockedDone <- err
	}()
	// Wait until the request owns the admission token.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if admitted, _, _ := srv.Stats(); admitted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shedCli := dialTest(t, addr)
	if _, err := shedCli.Search(context.Background(), "anything", 3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if _, shed, _ := srv.Stats(); shed == 0 {
		t.Fatal("shed counter did not move")
	}
	// Health bypasses admission control: it must answer during overload.
	h, err := shedCli.Health(context.Background())
	if err != nil {
		t.Fatalf("health under overload: %v", err)
	}
	if h.InFlightOps == 0 {
		t.Fatalf("health should see the pinned op: %+v", h)
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked request: %v", err)
	}
	// Capacity is back: the same client that was shed now succeeds.
	if _, err := shedCli.Search(context.Background(), "temperature", 3); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestServerConnCap: connections beyond MaxConns are refused at accept
// with one typed overloaded frame (the bounded accept queue).
func TestServerConnCap(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{MaxConns: 1})

	keeper := dialTest(t, addr)
	if _, err := keeper.Health(context.Background()); err != nil {
		t.Fatal(err)
	}

	refused, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer refused.Close()
	refused.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(refused, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("expected a refusal frame: %v", err)
	}
	if !strings.Contains(string(payload), CodeOverloaded) {
		t.Fatalf("refusal payload: %s", payload)
	}
	// The admitted connection keeps working.
	if _, err := keeper.Health(context.Background()); err != nil {
		t.Fatalf("keeper after refusal: %v", err)
	}
}

// TestServerMalformedFrame: JSON garbage inside a well-formed frame gets
// a typed bad-request reply and the connection survives.
func TestServerMalformedFrame(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{})

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte("{definitely not json")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(conn, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), CodeBadRequest) {
		t.Fatalf("payload: %s", payload)
	}
	// Stream is still synchronized: a valid request on the same
	// connection succeeds.
	if err := writeJSONFrame(conn, &Request{ID: 2, Op: OpHealth}); err != nil {
		t.Fatal(err)
	}
	payload, err = readFrame(conn, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), `"ok":true`) {
		t.Fatalf("payload: %s", payload)
	}
}

// TestServerOversizedFrame: a frame declaring more than MaxFrameBytes is
// refused with a typed reply and the connection closed (the stream
// cannot resync past an unread body).
func TestServerOversizedFrame(t *testing.T) {
	sys := newTestSystem(t, 12)
	_, addr := startServer(t, sys, Options{MaxFrameBytes: 1024})

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(conn, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(payload), CodeTooLarge) {
		t.Fatalf("payload: %s", payload)
	}
	// The connection is then closed by the server.
	if _, err := readFrame(conn, DefaultMaxFrame); err == nil {
		t.Fatal("expected the poisoned connection to be closed")
	}
}

// TestServerShutdownInProcess: Shutdown completes while a request is in
// flight, the in-flight request finishes, and late requests are refused
// with the typed closed error.
func TestServerShutdownInProcess(t *testing.T) {
	sys := newTestSystem(t, 12)
	srv := New(sys, Options{DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer sys.Close()

	cli := dialTest(t, ln.Addr().String())

	// Pin one request in the engine on a held lock.
	tx := sys.DB.Begin()
	if _, err := tx.Insert(core.TableName, uql.StoreRow(uql.Row{
		Entity: "Blocktown", Attribute: "temperature", Qualifier: "July", Value: "1", Conf: 1,
	})); err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	go func() {
		_, err := cli.Do(context.Background(), &Request{
			Op: OpSQL, SQL: "SELECT COUNT(*) FROM extracted", TimeoutMs: 30_000,
		})
		inflight <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if admitted, _, _ := srv.Stats(); admitted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// New connections are refused while draining.
	waitRefused := time.Now().Add(5 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err != nil {
			break
		}
		if time.Now().After(waitRefused) {
			t.Fatal("listener still accepting during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the lock; the in-flight request completes successfully —
	// drain waited for it instead of cutting it off.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestPoolExhaustedMapsToOverloaded: a buffer pool with every frame
// pinned is a capacity refusal — the wire mapping must type it as
// overloaded (clients back off and retry) and never as an internal
// error. The check is errors.Is on the sentinel, so wrapped variants
// map the same.
func TestPoolExhaustedMapsToOverloaded(t *testing.T) {
	wrapped := fmt.Errorf("select: pin page 12: %w", rdbms.ErrPoolExhausted)
	resp := errResponse(wrapped)
	if resp.OK || resp.Err == nil {
		t.Fatalf("errResponse returned OK for a pool-exhausted error: %+v", resp)
	}
	if resp.Err.Code != CodeOverloaded {
		t.Fatalf("pool exhaustion mapped to %q, want %q", resp.Err.Code, CodeOverloaded)
	}
	// An unrelated engine error still maps to internal.
	if got := errResponse(errors.New("boom")).Err.Code; got != CodeInternal {
		t.Fatalf("generic error mapped to %q, want %q", got, CodeInternal)
	}
}
