package server

import (
	"net"
	"time"
)

// FaultConn wraps a net.Conn and injects network pathologies on the
// write path — the client-side half of the fault harness. Tests dial the
// server through it to simulate slowloris trickle, mid-frame
// disconnects, and garbage injection, then assert the server stays
// available to healthy clients.
//
// The wrapper sits on the attacker's side by design: the server under
// test must see real TCP misbehavior arriving over a real socket, not a
// doctored in-process pipe.
type FaultConn struct {
	net.Conn

	// ChunkBytes > 0 splits every Write into chunks of at most this many
	// bytes with ChunkDelay between them (slowloris: a frame dribbles in
	// far slower than any honest client would send it).
	ChunkBytes int
	ChunkDelay time.Duration

	// CutAfterBytes >= 0 severs the connection (hard close) after that
	// many bytes have been written — mid-frame when aimed inside a
	// frame's extent. -1 disables.
	CutAfterBytes int

	// GarbagePrefix, when non-empty, is written once before the first
	// real payload byte (stream desynchronization: the server must reject
	// the resulting pseudo-frame without harm).
	GarbagePrefix []byte

	written     int
	sentGarbage bool
}

// NewFaultConn wraps conn with no faults armed (CutAfterBytes disabled).
func NewFaultConn(conn net.Conn) *FaultConn {
	return &FaultConn{Conn: conn, CutAfterBytes: -1}
}

// Write applies the armed faults to the outgoing byte stream.
func (f *FaultConn) Write(p []byte) (int, error) {
	if !f.sentGarbage && len(f.GarbagePrefix) > 0 {
		f.sentGarbage = true
		if _, err := f.Conn.Write(f.GarbagePrefix); err != nil {
			return 0, err
		}
	}
	total := 0
	for len(p) > 0 {
		chunk := p
		if f.ChunkBytes > 0 && len(chunk) > f.ChunkBytes {
			chunk = chunk[:f.ChunkBytes]
		}
		if f.CutAfterBytes >= 0 && f.written+len(chunk) > f.CutAfterBytes {
			// Sever mid-frame: write the bytes up to the cut point, then
			// hard-close so the server sees an abrupt disconnect with a
			// partial frame buffered.
			keep := f.CutAfterBytes - f.written
			if keep > 0 {
				f.Conn.Write(chunk[:keep])
				f.written += keep
				total += keep
			}
			f.Conn.Close()
			return total, net.ErrClosed
		}
		n, err := f.Conn.Write(chunk)
		f.written += n
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
		if f.ChunkBytes > 0 && len(p) > 0 && f.ChunkDelay > 0 {
			time.Sleep(f.ChunkDelay)
		}
	}
	return total, nil
}

// HalfClose shuts down the write side only (FIN), leaving the read side
// open — the lingering half-open connection servers must time out.
func (f *FaultConn) HalfClose() error {
	if tc, ok := f.Conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return f.Conn.Close()
}
