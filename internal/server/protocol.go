// Package server is the serving front end of the user layer: it exposes
// the DGE exploitation modes (keyword search, guided answering, SQL,
// browsing, subscriptions, corrections, lineage) over a length-prefixed
// JSON protocol on TCP, the way the paper's dataspace system fronts its
// substrates for ordinary applications.
//
// The server is built to stay up under hostile conditions rather than to
// be fast in the happy case only:
//
//   - Admission control: a bounded in-flight semaphore sheds excess load
//     with an immediate typed "overloaded" error instead of queueing
//     unboundedly, and a connection cap refuses connections beyond
//     capacity at accept time.
//   - Deadlines: every request runs under a context deadline that the
//     storage engine checks at scan-loop granularity, so a slow query is
//     cut off mid-scan, releasing its locks.
//   - Connection robustness: per-frame read/write deadlines, a maximum
//     frame size, malformed-frame rejection, and per-connection panic
//     recovery keep one misbehaving client from taking the process down.
//   - Graceful drain: shutdown stops accepting, lets in-flight requests
//     finish under a timeout, then closes the System so the next open is
//     the zero-write warm start.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/rdbms"
)

// Frame format: a 4-byte big-endian payload length followed by that many
// bytes of JSON. The length prefix lets the reader reject oversized or
// garbage frames before buffering them.

// DefaultMaxFrame bounds a frame payload (1 MiB): large enough for any
// real request or result page, small enough that a hostile length prefix
// cannot make the server allocate gigabytes.
const DefaultMaxFrame = 1 << 20

// frameHeaderSize is the length prefix size in bytes.
const frameHeaderSize = 4

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// configured maximum — the connection is poisoned and must be closed
// (the remainder of the stream cannot be resynchronized).
var ErrFrameTooLarge = errors.New("server: frame exceeds maximum size")

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload, refusing frames larger
// than max.
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeJSONFrame marshals v and writes it as one frame.
func writeJSONFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// Request operations.
const (
	OpSearch    = "search"    // Query, K -> Hits
	OpAsk       = "ask"       // Query, K -> Guided
	OpSQL       = "sql"       // SQL -> Result
	OpBrowse    = "browse"    // Refine -> Browse
	OpSubscribe = "subscribe" // User, Entity, Attribute, SubOp, Threshold, MinConf -> SubID
	OpCorrect   = "correct"   // User, Entity, Attribute, Qualifier, Value
	OpExplain   = "explain"   // Entity, Attribute, Qualifier -> Text
	OpHealth    = "health"    // -> Health (admin; bypasses admission control)
)

// Request is one framed client request. Fields are a flat union across
// the operations; unused fields stay at their zero value.
type Request struct {
	ID int64  `json:"id"`
	Op string `json:"op"`

	Query string `json:"query,omitempty"` // search, ask
	K     int    `json:"k,omitempty"`     // search, ask

	SQL string `json:"sql,omitempty"` // sql

	Refine []string `json:"refine,omitempty"` // browse: "facet=value" steps

	User      string  `json:"user,omitempty"`      // subscribe, correct
	Entity    string  `json:"entity,omitempty"`    // subscribe, correct, explain
	Attribute string  `json:"attribute,omitempty"` // subscribe, correct, explain
	Qualifier string  `json:"qualifier,omitempty"` // correct, explain
	Value     string  `json:"value,omitempty"`     // correct
	SubOp     string  `json:"sub_op,omitempty"`    // subscribe: > >= < <= = !=
	Threshold float64 `json:"threshold,omitempty"` // subscribe
	MinConf   float64 `json:"min_conf,omitempty"`  // subscribe

	// TimeoutMs bounds the request server-side. Zero means the server
	// default; the server clamps it to its configured maximum either way.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Error codes carried in responses. The client maps these back to typed
// errors so callers can program against overload and shutdown.
const (
	CodeOverloaded = "overloaded"  // shed by admission control; retry later
	CodeClosed     = "closed"      // server is draining or the system closed
	CodeDeadline   = "deadline"    // the request's deadline expired mid-execution
	CodeCanceled   = "canceled"    // the request's context was canceled
	CodeBadRequest = "bad_request" // malformed or unknown operation / arguments
	CodeTooLarge   = "too_large"   // request frame exceeded the maximum size
	CodeConflict   = "conflict"    // transient concurrency conflict (deadlock); retry
	CodeNotFound   = "not_found"   // no matching fact/provenance
	CodeDegraded   = "degraded"    // shards down and no partial result could be served
	CodeInternal   = "internal"    // unexpected server-side failure
)

// WireError is the serialized form of a failed request.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *WireError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Message)
}

// Hit mirrors search.Hit on the wire.
type Hit struct {
	Title   string  `json:"title"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

// ResultSet is the wire form of rdbms.ResultSet: rows flattened to
// display strings (the CLI-facing representation; clients needing typed
// access issue narrower queries).
type ResultSet struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Plan    string     `json:"plan,omitempty"`
	Mutated bool       `json:"mutated,omitempty"`
}

func toWireResultSet(rs *rdbms.ResultSet) *ResultSet {
	if rs == nil {
		return nil
	}
	out := &ResultSet{Columns: rs.Columns, Plan: rs.Plan, Mutated: rs.Mutated}
	out.Rows = make([][]string, len(rs.Rows))
	for i, r := range rs.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = v.String()
		}
		out.Rows[i] = row
	}
	return out
}

// Guided is the wire form of a guided answer.
type Guided struct {
	Candidates []GuidedCandidate `json:"candidates"`
	Answer     *ResultSet        `json:"answer,omitempty"`
	Coverage   float64           `json:"coverage"`
}

// GuidedCandidate is one ranked structured interpretation.
type GuidedCandidate struct {
	Form      string  `json:"form"`
	SQL       string  `json:"sql"`
	Attribute string  `json:"attribute"`
	Score     float64 `json:"score"`
}

// FacetValue is one bucket of a browse facet.
type FacetValue struct {
	Value string `json:"value"`
	Count int    `json:"count"`
}

// Facet is one navigable browse dimension.
type Facet struct {
	Name   string       `json:"name"`
	Values []FacetValue `json:"values"`
}

// Browse is the wire form of a faceted browsing summary.
type Browse struct {
	Path   string  `json:"path,omitempty"`
	Rows   int     `json:"rows"`
	Facets []Facet `json:"facets"`
}

// Health is the admin view of engine and server vitals (satellite of the
// serving front end: observability without attaching a debugger).
type Health struct {
	ExtractedRows  int   `json:"extracted_rows"`
	InFlightOps    int   `json:"in_flight_ops"` // core operations currently executing
	Closing        bool  `json:"closing"`
	Draining       bool  `json:"draining"`
	ActiveConns    int   `json:"active_conns"`
	Admitted       int64 `json:"admitted"` // requests admitted past the semaphore
	Shed           int64 `json:"shed"`     // requests refused with overloaded
	Served         int64 `json:"served"`   // responses written
	Checkpoints    int64 `json:"checkpoints"`
	WALSyncs       int64 `json:"wal_syncs"`
	IndexesLoaded  int   `json:"indexes_loaded"`  // last open: persisted index checkpoints used
	IndexesRebuilt int   `json:"indexes_rebuilt"` // last open: indexes rebuilt by scan

	// Buffer-pool vitals (PR10): how the larger-than-RAM cache is doing.
	// Counters are summed across shards on a sharded backend; the hit
	// rate is derived from the summed counters.
	BufferHits       int64   `json:"buffer_hits"`
	BufferMisses     int64   `json:"buffer_misses"`
	BufferEvictions  int64   `json:"buffer_evictions"`
	BufferScanBypass int64   `json:"buffer_scan_bypass"` // scan-hinted misses admitted evict-first
	BufferHitRate    float64 `json:"buffer_hit_rate"`
	BufferCapacity   int     `json:"buffer_capacity"` // total frames
	BufferResident   int     `json:"buffer_resident"`
	Shards           int     `json:"shards,omitempty"`      // sharded backend: shard count
	ShardsDown       []int   `json:"shards_down,omitempty"` // sharded backend: dead shard indexes
}

// Degraded marks a response produced without some shards: the data is
// the healthy shards' complete answer, with the dead partitions' rows
// missing (provenance of the gap, not silent truncation).
type Degraded struct {
	Down   []int `json:"down"`   // dead shard indexes, ascending
	Shards int   `json:"shards"` // total shard count
}

// Response is one framed reply. Exactly one result field is set on
// success, matching the request op; Err is set on failure.
type Response struct {
	ID  int64      `json:"id"`
	OK  bool       `json:"ok"`
	Err *WireError `json:"err,omitempty"`

	Hits    []Hit      `json:"hits,omitempty"`
	Guided  *Guided    `json:"guided,omitempty"`
	Result  *ResultSet `json:"result,omitempty"`
	Browse  *Browse    `json:"browse,omitempty"`
	SubID   int        `json:"sub_id,omitempty"`
	Text    string     `json:"text,omitempty"`
	Health  *Health    `json:"health,omitempty"`
	Elapsed int64      `json:"elapsed_us,omitempty"` // server-side execution time

	// Degraded, when set on an OK response, marks a partial result:
	// the named shards were down and their rows are absent.
	Degraded *Degraded `json:"degraded,omitempty"`
}
