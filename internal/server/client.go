package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Typed client-side errors for the codes callers branch on. A server
// error response unwraps to one of these via errors.Is; the full wire
// message rides along in the error text.
var (
	// ErrServerClosed: the server is draining or its system has closed.
	ErrServerClosed = errors.New("server: closed")
	// ErrDeadline: the request's server-side deadline expired.
	ErrDeadline = errors.New("server: deadline exceeded")
	// ErrConflict: transient concurrency conflict (deadlock); retryable.
	ErrConflict = errors.New("server: conflict")
	// ErrBadRequest: the server rejected the request as malformed.
	ErrBadRequest = errors.New("server: bad request")
	// ErrNotFound: no matching fact or provenance.
	ErrNotFound = errors.New("server: not found")
)

// codeErr maps a wire code to its typed sentinel (nil = untyped).
func codeErr(code string) error {
	switch code {
	case CodeOverloaded:
		return ErrOverloaded
	case CodeClosed:
		return ErrServerClosed
	case CodeDeadline:
		return ErrDeadline
	case CodeCanceled:
		return context.Canceled
	case CodeConflict:
		return ErrConflict
	case CodeBadRequest, CodeTooLarge:
		return ErrBadRequest
	case CodeNotFound:
		return ErrNotFound
	}
	return nil
}

// wireToError converts a failed response to a client error that both
// carries the server's message and unwraps to the matching sentinel.
func wireToError(we *WireError) error {
	if we == nil {
		return errors.New("server: missing error detail")
	}
	if sentinel := codeErr(we.Code); sentinel != nil {
		return fmt.Errorf("%w: %s", sentinel, we.Message)
	}
	return we
}

// Client speaks the framed protocol to a unidbd server over one TCP
// connection. Safe for concurrent use: requests are serialized on the
// connection (the protocol is strictly request/response).
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	nextID   int64
	maxFrame int
}

// Dial connects to a unidbd server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, maxFrame: DefaultMaxFrame}, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Do sends one request and waits for its response. The context's
// deadline travels to the server (TimeoutMs) and also bounds the local
// network wait, so a dead server cannot hang the caller.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	netDeadline := time.Now().Add(2 * time.Minute)
	if d, ok := ctx.Deadline(); ok {
		if req.TimeoutMs == 0 {
			req.TimeoutMs = time.Until(d).Milliseconds()
			if req.TimeoutMs < 1 {
				req.TimeoutMs = 1
			}
		}
		// Allow the server a grace beyond the request deadline to deliver
		// its own typed deadline error before the socket gives up.
		netDeadline = d.Add(5 * time.Second)
	}
	c.conn.SetDeadline(netDeadline)
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c.conn, payload); err != nil {
		return nil, err
	}
	raw, err := readFrame(c.conn, c.maxFrame)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("server: undecodable response: %w", err)
	}
	if resp.ID != 0 && resp.ID != req.ID {
		return nil, fmt.Errorf("server: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, wireToError(resp.Err)
	}
	return &resp, nil
}

// Search runs keyword search.
func (c *Client) Search(ctx context.Context, query string, k int) ([]Hit, error) {
	resp, err := c.Do(ctx, &Request{Op: OpSearch, Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// Ask runs the guided keyword-to-structured flow.
func (c *Client) Ask(ctx context.Context, query string, k int) (*Guided, error) {
	resp, err := c.Do(ctx, &Request{Op: OpAsk, Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Guided, nil
}

// SQL executes one SQL statement.
func (c *Client) SQL(ctx context.Context, stmt string) (*ResultSet, error) {
	resp, err := c.Do(ctx, &Request{Op: OpSQL, SQL: stmt})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Browse fetches a faceted browsing summary after applying refinements
// ("facet=value" steps).
func (c *Client) Browse(ctx context.Context, refine ...string) (*Browse, error) {
	resp, err := c.Do(ctx, &Request{Op: OpBrowse, Refine: refine})
	if err != nil {
		return nil, err
	}
	return resp.Browse, nil
}

// Subscribe registers a standing query and returns its id.
func (c *Client) Subscribe(ctx context.Context, user, entity, attribute, op string, threshold, minConf float64) (int, error) {
	resp, err := c.Do(ctx, &Request{
		Op: OpSubscribe, User: user, Entity: entity, Attribute: attribute,
		SubOp: op, Threshold: threshold, MinConf: minConf,
	})
	if err != nil {
		return 0, err
	}
	return resp.SubID, nil
}

// Correct applies a human correction to one extracted fact.
func (c *Client) Correct(ctx context.Context, user, entity, attribute, qualifier, value string) error {
	_, err := c.Do(ctx, &Request{
		Op: OpCorrect, User: user, Entity: entity, Attribute: attribute,
		Qualifier: qualifier, Value: value,
	})
	return err
}

// Explain fetches the lineage of one extracted fact.
func (c *Client) Explain(ctx context.Context, entity, attribute, qualifier string) (string, error) {
	resp, err := c.Do(ctx, &Request{Op: OpExplain, Entity: entity, Attribute: attribute, Qualifier: qualifier})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Health fetches engine and server vitals (never admission-controlled).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	resp, err := c.Do(ctx, &Request{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	return resp.Health, nil
}
