package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Typed client-side errors for the codes callers branch on. A server
// error response unwraps to one of these via errors.Is; the full wire
// message rides along in the error text.
var (
	// ErrServerClosed: the server is draining or its system has closed.
	ErrServerClosed = errors.New("server: closed")
	// ErrDeadline: the request's server-side deadline expired.
	ErrDeadline = errors.New("server: deadline exceeded")
	// ErrConflict: transient concurrency conflict (deadlock); retryable.
	ErrConflict = errors.New("server: conflict")
	// ErrBadRequest: the server rejected the request as malformed.
	ErrBadRequest = errors.New("server: bad request")
	// ErrNotFound: no matching fact or provenance.
	ErrNotFound = errors.New("server: not found")
	// ErrDegraded: shards were down and no partial result could be
	// served for this request (partial results arrive as OK responses
	// with Response.Degraded set instead).
	ErrDegraded = errors.New("server: degraded")
)

// codeErr maps a wire code to its typed sentinel (nil = untyped).
func codeErr(code string) error {
	switch code {
	case CodeOverloaded:
		return ErrOverloaded
	case CodeClosed:
		return ErrServerClosed
	case CodeDeadline:
		return ErrDeadline
	case CodeCanceled:
		return context.Canceled
	case CodeConflict:
		return ErrConflict
	case CodeBadRequest, CodeTooLarge:
		return ErrBadRequest
	case CodeNotFound:
		return ErrNotFound
	case CodeDegraded:
		return ErrDegraded
	}
	return nil
}

// wireToError converts a failed response to a client error that both
// carries the server's message and unwraps to the matching sentinel.
func wireToError(we *WireError) error {
	if we == nil {
		return errors.New("server: missing error detail")
	}
	if sentinel := codeErr(we.Code); sentinel != nil {
		return fmt.Errorf("%w: %s", sentinel, we.Message)
	}
	return we
}

// Client speaks the framed protocol to a unidbd server over one TCP
// connection. Safe for concurrent use, and since PR7 concurrent calls
// are multiplexed rather than serialized: every request carries a unique
// nonzero ID, a single reader goroutine routes response frames back to
// their waiting callers by ID, and writes are serialized per frame — so
// N goroutines sharing one Client pipeline N requests down one
// connection, and a slow statement does not head-of-line-block the rest.
type Client struct {
	conn     net.Conn
	maxFrame int

	writeMu sync.Mutex // serializes request frames on the wire
	nextID  atomic.Int64

	mu      sync.Mutex // guards pending and readErr
	pending map[int64]chan doResult
	readErr error // reader goroutine's terminal error; fails all calls
}

// doResult is what the reader goroutine delivers to a waiting Do call.
type doResult struct {
	resp *Response
	err  error
}

// Dial connects to a unidbd server and starts the response reader.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, maxFrame: DefaultMaxFrame, pending: map[int64]chan doResult{}}
	go c.readLoop()
	return c, nil
}

// Close releases the connection; in-flight calls fail promptly.
func (c *Client) Close() error {
	return c.conn.Close()
}

// readLoop is the single connection reader: it decodes each response
// frame and hands it to the Do call whose request ID matches. A response
// for an ID nobody waits on (a caller that already timed out locally) is
// dropped. On a read error — server gone, connection closed — every
// pending and future call fails with that error.
func (c *Client) readLoop() {
	for {
		raw, err := readFrame(c.conn, c.maxFrame)
		if err != nil {
			c.failAll(err)
			return
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			c.failAll(fmt.Errorf("server: undecodable response: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- doResult{resp: &resp} // buffered; never blocks the reader
		}
	}
}

// failAll poisons the client: every pending call and every later call
// gets the reader's terminal error.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- doResult{err: err}
	}
}

// forget abandons a pending request (local timeout); its eventual
// response, if any, is dropped by the reader.
func (c *Client) forget(id int64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Do sends one request and waits for its response; concurrent Do calls
// share the connection. The context's deadline travels to the server
// (TimeoutMs) and also bounds the local wait — with a grace beyond the
// request deadline so the server can deliver its own typed deadline
// error before the client gives up — so a dead server cannot hang the
// caller.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.ID = c.nextID.Add(1)
	wait := 2 * time.Minute
	if d, ok := ctx.Deadline(); ok {
		if req.TimeoutMs == 0 {
			req.TimeoutMs = time.Until(d).Milliseconds()
			if req.TimeoutMs < 1 {
				req.TimeoutMs = 1
			}
		}
		wait = time.Until(d) + 5*time.Second
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	ch := make(chan doResult, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	err = writeFrame(c.conn, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.forget(req.ID)
		return nil, err
	}

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if !res.resp.OK {
			return nil, wireToError(res.resp.Err)
		}
		return res.resp, nil
	case <-timer.C:
		c.forget(req.ID)
		return nil, fmt.Errorf("server: no response to request %d within %v", req.ID, wait)
	}
}

// Search runs keyword search.
func (c *Client) Search(ctx context.Context, query string, k int) ([]Hit, error) {
	resp, err := c.Do(ctx, &Request{Op: OpSearch, Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// Ask runs the guided keyword-to-structured flow.
func (c *Client) Ask(ctx context.Context, query string, k int) (*Guided, error) {
	resp, err := c.Do(ctx, &Request{Op: OpAsk, Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Guided, nil
}

// SQL executes one SQL statement.
func (c *Client) SQL(ctx context.Context, stmt string) (*ResultSet, error) {
	resp, err := c.Do(ctx, &Request{Op: OpSQL, SQL: stmt})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Browse fetches a faceted browsing summary after applying refinements
// ("facet=value" steps).
func (c *Client) Browse(ctx context.Context, refine ...string) (*Browse, error) {
	resp, err := c.Do(ctx, &Request{Op: OpBrowse, Refine: refine})
	if err != nil {
		return nil, err
	}
	return resp.Browse, nil
}

// Subscribe registers a standing query and returns its id.
func (c *Client) Subscribe(ctx context.Context, user, entity, attribute, op string, threshold, minConf float64) (int, error) {
	resp, err := c.Do(ctx, &Request{
		Op: OpSubscribe, User: user, Entity: entity, Attribute: attribute,
		SubOp: op, Threshold: threshold, MinConf: minConf,
	})
	if err != nil {
		return 0, err
	}
	return resp.SubID, nil
}

// Correct applies a human correction to one extracted fact.
func (c *Client) Correct(ctx context.Context, user, entity, attribute, qualifier, value string) error {
	_, err := c.Do(ctx, &Request{
		Op: OpCorrect, User: user, Entity: entity, Attribute: attribute,
		Qualifier: qualifier, Value: value,
	})
	return err
}

// Explain fetches the lineage of one extracted fact.
func (c *Client) Explain(ctx context.Context, entity, attribute, qualifier string) (string, error) {
	resp, err := c.Do(ctx, &Request{Op: OpExplain, Entity: entity, Attribute: attribute, Qualifier: qualifier})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Health fetches engine and server vitals (never admission-controlled).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	resp, err := c.Do(ctx, &Request{Op: OpHealth})
	if err != nil {
		return nil, err
	}
	return resp.Health, nil
}
