package server

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/rdbms"
	"repro/internal/shard"
)

// degradedInfo extracts the shard-loss marker from an error, if any.
// A degraded error ALONGSIDE a non-nil result means the healthy shards
// answered and the response ships partial data with the gap declared;
// a degraded error with no result is a plain typed failure.
func degradedInfo(err error) *Degraded {
	var de *shard.DegradedError
	if errors.As(err, &de) {
		return &Degraded{Down: de.Down, Shards: de.Shards}
	}
	return nil
}

// handle dispatches one admitted request to the backend under ctx.
func (s *Server) handle(ctx context.Context, req *Request) *Response {
	switch req.Op {
	case OpSearch:
		k := req.K
		if k <= 0 {
			k = 10
		}
		hits, err := s.sys.KeywordSearch(ctx, req.Query, k)
		if err != nil {
			return errResponse(err)
		}
		out := make([]Hit, len(hits))
		for i, h := range hits {
			out[i] = Hit{Title: h.Title, Score: h.Score, Snippet: h.Snippet}
		}
		return &Response{OK: true, Hits: out}

	case OpAsk:
		k := req.K
		if k <= 0 {
			k = 5
		}
		ans, err := s.sys.AskGuided(ctx, req.Query, k)
		var deg *Degraded
		if err != nil {
			if deg = degradedInfo(err); deg == nil || ans == nil {
				return errResponse(err)
			}
		}
		g := &Guided{Coverage: ans.Coverage, Answer: toWireResultSet(ans.Answer)}
		for _, c := range ans.Candidates {
			g.Candidates = append(g.Candidates, GuidedCandidate{
				Form: c.Form(), SQL: c.SQL, Attribute: c.Attribute, Score: c.Score,
			})
		}
		return &Response{OK: true, Guided: g, Degraded: deg}

	case OpSQL:
		if strings.TrimSpace(req.SQL) == "" {
			return badRequest("sql: empty statement")
		}
		rs, err := s.sys.SQL(ctx, req.SQL)
		var deg *Degraded
		if err != nil {
			if deg = degradedInfo(err); deg == nil || rs == nil {
				return errResponse(err)
			}
		}
		return &Response{OK: true, Result: toWireResultSet(rs), Degraded: deg}

	case OpBrowse:
		b, err := s.sys.Browse(ctx)
		var deg *Degraded
		if err != nil {
			if deg = degradedInfo(err); deg == nil || b == nil {
				return errResponse(err)
			}
		}
		for _, step := range req.Refine {
			facet, value, ok := strings.Cut(step, "=")
			if !ok {
				return badRequest(fmt.Sprintf("browse: refinement %q is not facet=value", step))
			}
			if err := b.Refine(facet, value); err != nil {
				return badRequest(err.Error())
			}
		}
		out := &Browse{Path: b.Path(), Rows: len(b.Rows())}
		for _, f := range b.Facets() {
			wf := Facet{Name: f.Name}
			for _, v := range f.Values {
				wf.Values = append(wf.Values, FacetValue{Value: v.Value, Count: v.Count})
			}
			out.Facets = append(out.Facets, wf)
		}
		return &Response{OK: true, Browse: out, Degraded: deg}

	case OpSubscribe:
		id, err := s.sys.Subscribe(alert.Subscription{
			User: req.User, Entity: req.Entity, Attribute: req.Attribute,
			Op: alert.Op(req.SubOp), Threshold: req.Threshold, MinConf: req.MinConf,
		})
		if err != nil {
			if errors.Is(err, core.ErrClosed) {
				return errResponse(err)
			}
			return badRequest(err.Error())
		}
		return &Response{OK: true, SubID: id}

	case OpCorrect:
		if req.Entity == "" || req.Attribute == "" {
			return badRequest("correct: entity and attribute required")
		}
		err := s.sys.CorrectValue(ctx, req.User, req.Entity, req.Attribute, req.Qualifier, req.Value)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}

	case OpExplain:
		text, err := s.sys.ExplainFact(ctx, req.Entity, req.Attribute, req.Qualifier)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Text: text}

	default:
		return badRequest(fmt.Sprintf("unknown op %q", req.Op))
	}
}

// handleHealth assembles the engine and server vitals. It runs outside
// admission control and tolerates a closed system: health must answer
// during overload and during drain. A sharded backend additionally
// reports its topology and which shards are down.
func (s *Server) handleHealth() *Response {
	h := &Health{
		InFlightOps: s.sys.InFlightOps(),
		Closing:     s.sys.Closing(),
		Draining:    s.isDraining(),
		ActiveConns: s.ActiveConns(),
	}
	h.Admitted, h.Shed, h.Served = s.Stats()
	if rows, err := s.sys.ExtractedRows(); err == nil {
		h.ExtractedRows = rows
	}
	es := s.sys.EngineStats()
	h.Checkpoints = es.Checkpoints
	h.WALSyncs = es.WALSyncs
	h.IndexesLoaded, h.IndexesRebuilt = es.IndexesLoaded, es.IndexesRebuilt
	h.BufferHits, h.BufferMisses = es.BufferHits, es.BufferMisses
	h.BufferEvictions, h.BufferScanBypass = es.BufferEvictions, es.BufferScanBypass
	h.BufferCapacity, h.BufferResident = es.BufferCapacity, es.BufferResident
	if total := es.BufferHits + es.BufferMisses; total > 0 {
		h.BufferHitRate = float64(es.BufferHits) / float64(total)
	}
	if sb, ok := s.sys.(shardedBackend); ok {
		h.Shards = sb.Shards()
		h.ShardsDown = sb.DownShards()
	}
	return &Response{OK: true, Health: h}
}

func badRequest(msg string) *Response {
	return &Response{OK: false, Err: &WireError{Code: CodeBadRequest, Message: msg}}
}

// errResponse maps an execution error to its wire code. The mapping is
// the contract clients program against: overload and shutdown are typed,
// deadline expiry is distinguishable from failure, deadlock aborts are
// marked retryable.
func errResponse(err error) *Response {
	code := CodeInternal
	var de *shard.DegradedError
	switch {
	case errors.Is(err, ErrOverloaded):
		code = CodeOverloaded
	case errors.Is(err, rdbms.ErrPoolExhausted):
		// Every buffer frame pinned is a capacity refusal, not an
		// internal fault: typed like admission shedding so clients back
		// off and retry instead of treating it as a server bug.
		code = CodeOverloaded
	case errors.As(err, &de):
		// Result-less shard loss (e.g. an entity routed to a dead
		// shard): typed so clients can distinguish "partition gone"
		// from internal failure.
		code = CodeDegraded
	case errors.Is(err, shard.ErrReadOnly), errors.Is(err, shard.ErrUnsupported):
		code = CodeBadRequest
	case errors.Is(err, ErrDraining), errors.Is(err, core.ErrClosed):
		code = CodeClosed
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadline
	case errors.Is(err, context.Canceled):
		code = CodeCanceled
	case errors.Is(err, rdbms.ErrDeadlock):
		code = CodeConflict
	case strings.Contains(err.Error(), "no extracted row"),
		strings.Contains(err.Error(), "no provenance"):
		code = CodeNotFound
	}
	return &Response{OK: false, Err: &WireError{Code: code, Message: err.Error()}}
}
