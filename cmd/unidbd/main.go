// Command unidbd is the serving daemon of the user layer: it opens the
// end-to-end system (optionally over the crash-safe on-disk engine) and
// serves the DGE exploitation modes over a length-prefixed JSON protocol
// on TCP. Point `unidb -remote ADDR <command>` at it, or speak the
// protocol directly.
//
// Robustness contract:
//
//   - Admission control: at most -max-inflight requests execute at once;
//     excess requests are shed immediately with a typed "overloaded"
//     error, and connections beyond -max-conns are refused at accept.
//   - Deadlines: every request runs under a server-side deadline
//     (request-supplied, clamped by -max-timeout) that the storage engine
//     honors mid-scan.
//   - Graceful drain: SIGTERM/SIGINT stops accepting, finishes in-flight
//     requests under -drain-timeout, then closes the system — so the next
//     open of the same -data directory is a zero-write warm start.
//   - Sharding: -shards N partitions the extracted table by entity hash
//     across N engines behind the same protocol; reads fan out and merge
//     byte-identically to a single engine, and shard loss degrades to
//     partial results carrying a "degraded" marker instead of failing.
//
// Usage:
//
//	unidbd [-addr HOST:PORT] [-data DIR] [corpus flags] [robustness flags]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/server"
)

func main() {
	fs := flag.NewFlagSet("unidbd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7407", "listen address (port 0 picks a free port)")
	dataDir := fs.String("data", "", "back the system with the crash-safe on-disk engine under this directory")
	shards := fs.Int("shards", 1, "partition the extracted table by entity hash across this many engines")
	cities := fs.Int("cities", 50, "synthetic city articles")
	people := fs.Int("people", 20, "synthetic people")
	filler := fs.Int("filler", 30, "synthetic filler articles")
	seed := fs.Int64("seed", 1, "corpus seed")
	workers := fs.Int("workers", 4, "cluster workers")
	corrupt := fs.Float64("corrupt", 0, "fraction of corrupted city articles")
	maxInflight := fs.Int("max-inflight", 64, "admission control: concurrently executing requests")
	maxConns := fs.Int("max-conns", 1024, "maximum accepted connections")
	idleTimeout := fs.Duration("idle-timeout", 30*time.Second, "per-connection idle/read deadline")
	reqTimeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "clamp on request-supplied deadlines")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	err := server.RunDaemon(server.DaemonConfig{
		Addr:    *addr,
		DataDir: *dataDir,
		Shards:  *shards,
		Cities:  *cities, People: *people, Filler: *filler,
		Seed: *seed, Workers: *workers, CorruptFrac: *corrupt,
		Server: server.Options{
			MaxInFlight:           *maxInflight,
			MaxConns:              *maxConns,
			IdleTimeout:           *idleTimeout,
			DefaultRequestTimeout: *reqTimeout,
			MaxRequestTimeout:     *maxTimeout,
			DrainTimeout:          *drainTimeout,
			ErrorLog:              os.Stderr,
		},
		Out: os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unidbd:", err)
		os.Exit(1)
	}
}
