package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	base := []string{"-cities", "15", "-people", "5", "-filler", "5", "-workers", "2"}
	if err := run(append(base, args...), &sb); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestCLIMissingCommand(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("missing command should error")
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"frobnicate"}, &sb); err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestCLIGenerateDefaultProgram(t *testing.T) {
	out := runCLI(t, "generate")
	if !strings.Contains(out, "plan:") || !strings.Contains(out, "materialized rows:") {
		t.Fatalf("generate output:\n%s", out)
	}
	if !strings.Contains(out, "prefilter") {
		t.Fatalf("plan should mention the optimizer:\n%s", out)
	}
}

func TestCLIGenerateFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.uql")
	prog := "EXTRACT temperature FROM docs USING city KIND city INTO t;\nSTORE t INTO TABLE extracted;\n"
	if err := os.WriteFile(path, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "generate", path)
	if !strings.Contains(out, "store t into table extracted") {
		t.Fatalf("file program not run:\n%s", out)
	}
	// Missing file errors.
	var sb strings.Builder
	if err := run([]string{"generate", "/no/such/file.uql"}, &sb); err == nil {
		t.Fatal("missing program file should error")
	}
}

func TestCLISearch(t *testing.T) {
	out := runCLI(t, "search", "Madison", "temperature")
	if !strings.Contains(out, "Madison, Wisconsin") {
		t.Fatalf("search output:\n%s", out)
	}
	out = runCLI(t, "search", "zzzznothing")
	if !strings.Contains(out, "no hits") {
		t.Fatalf("no-hit output:\n%s", out)
	}
}

func TestCLIAsk(t *testing.T) {
	out := runCLI(t, "ask", "average", "March", "September", "temperature", "Madison", "Wisconsin")
	if !strings.Contains(out, "candidate structured queries:") {
		t.Fatalf("ask output:\n%s", out)
	}
	if !strings.Contains(out, "59.714") {
		t.Fatalf("expected the Madison answer in:\n%s", out)
	}
	out = runCLI(t, "ask", "nonsense", "gibberish")
	if !strings.Contains(out, "no structured interpretation") {
		t.Fatalf("unanswerable output:\n%s", out)
	}
}

func TestCLISQL(t *testing.T) {
	out := runCLI(t, "sql", "SELECT COUNT(*) FROM extracted")
	if !strings.Contains(out, "COUNT(*)") {
		t.Fatalf("sql output:\n%s", out)
	}
	var sb strings.Builder
	if err := run([]string{"sql", "SELECT FROM"}, &sb); err == nil {
		t.Fatal("bad SQL should error")
	}
}

func TestCLIBrowse(t *testing.T) {
	out := runCLI(t, "browse")
	if !strings.Contains(out, "facet attribute:") || !strings.Contains(out, "temperature") {
		t.Fatalf("browse output:\n%s", out)
	}
	out = runCLI(t, "browse", "attribute=temperature")
	if !strings.Contains(out, "path: attribute=temperature") {
		t.Fatalf("refined browse output:\n%s", out)
	}
	var sb strings.Builder
	if err := run([]string{"browse", "notanequals"}, &sb); err == nil {
		t.Fatal("malformed refinement should error")
	}
	if err := run([]string{"browse", "bogus=1"}, &sb); err == nil {
		t.Fatal("unknown facet should error")
	}
}

func TestCLISweepCleanAndCorrupt(t *testing.T) {
	out := runCLI(t, "sweep")
	if !strings.Contains(out, "no suspicious values") {
		t.Fatalf("clean sweep output:\n%s", out)
	}
	var sb strings.Builder
	err := run([]string{"-cities", "40", "-people", "0", "-filler", "0", "-corrupt", "0.15", "sweep"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "suspect") {
		t.Fatalf("corrupt sweep should flag values:\n%s", sb.String())
	}
}

func TestCLIStats(t *testing.T) {
	out := runCLI(t, "stats")
	if !strings.Contains(out, "counter uql.store.rows") {
		t.Fatalf("stats output:\n%s", out)
	}
}

func TestCLIDataDirPersistsAcrossInvocations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "unidb-data")
	// First invocation generates and persists.
	out := runCLI(t, "-data", dir, "generate")
	if !strings.Contains(out, "materialized rows") {
		t.Fatalf("generate output: %s", out)
	}
	// Second invocation reopens the database: the structure must come
	// from disk (reopened banner), not from a fresh demo generation.
	out = runCLI(t, "-data", dir, "sql", "SELECT COUNT(*) AS n FROM extracted")
	if !strings.Contains(out, "reopened database under") {
		t.Fatalf("second invocation did not reopen: %s", out)
	}
	if strings.Contains(out, "n\n0\n") {
		t.Fatalf("no rows survived the reopen: %s", out)
	}
}
