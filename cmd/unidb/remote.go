package main

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/server"
)

// runRemote executes one CLI command against a unidbd server instead of
// an in-process system. The command surface mirrors the local one; the
// ctx deadline (from -timeout) travels to the server, which enforces it
// mid-scan.
func runRemote(ctx context.Context, addr, cmd string, args []string, out io.Writer) error {
	cli, err := server.Dial(addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	defer cli.Close()

	switch cmd {
	case "search":
		hits, err := cli.Search(ctx, strings.Join(args, " "), 10)
		if err != nil {
			return err
		}
		for i, h := range hits {
			fmt.Fprintf(out, "%2d. %-40s %.3f  %s\n", i+1, h.Title, h.Score, h.Snippet)
		}
		if len(hits) == 0 {
			fmt.Fprintln(out, "(no hits)")
		}
		return nil

	case "ask":
		ans, err := cli.Ask(ctx, strings.Join(args, " "), 5)
		if err != nil {
			return err
		}
		if len(ans.Candidates) == 0 {
			fmt.Fprintln(out, "no structured interpretation found; try 'search'")
			return nil
		}
		fmt.Fprintln(out, "candidate structured queries:")
		for i, c := range ans.Candidates {
			fmt.Fprintf(out, "%2d. %-60s (score %.2f)\n", i+1, c.Form, c.Score)
		}
		fmt.Fprintf(out, "\nexecuting top candidate:\n  %s\n\n", ans.Candidates[0].SQL)
		printResultSet(out, ans.Answer)
		fmt.Fprintf(out, "(extraction coverage for %s: %.0f%%)\n",
			ans.Candidates[0].Attribute, ans.Coverage*100)
		return nil

	case "sql":
		rs, err := cli.SQL(ctx, strings.Join(args, " "))
		if err != nil {
			return err
		}
		printResultSet(out, rs)
		fmt.Fprintf(out, "(plan: %s)\n", rs.Plan)
		return nil

	case "browse":
		b, err := cli.Browse(ctx, args...)
		if err != nil {
			return err
		}
		if b.Path != "" {
			fmt.Fprintf(out, "path: %s\n", b.Path)
		}
		fmt.Fprintf(out, "rows: %d\n", b.Rows)
		for _, f := range b.Facets {
			fmt.Fprintf(out, "facet %s:\n", f.Name)
			for i, v := range f.Values {
				if i >= 8 {
					fmt.Fprintf(out, "  ... %d more\n", len(f.Values)-8)
					break
				}
				fmt.Fprintf(out, "  %-40s %d\n", v.Value, v.Count)
			}
		}
		return nil

	case "correct":
		// correct <user> <entity> <attribute> <qualifier> <new-value>
		if len(args) != 5 {
			return fmt.Errorf("usage: correct <user> <entity> <attribute> <qualifier> <new-value>")
		}
		if err := cli.Correct(ctx, args[0], args[1], args[2], args[3], args[4]); err != nil {
			return err
		}
		fmt.Fprintln(out, "corrected")
		return nil

	case "explain":
		// explain <entity> <attribute> [qualifier]
		if len(args) < 2 {
			return fmt.Errorf("usage: explain <entity> <attribute> [qualifier]")
		}
		qual := ""
		if len(args) > 2 {
			qual = args[2]
		}
		text, err := cli.Explain(ctx, args[0], args[1], qual)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, text)
		return nil

	case "health":
		h, err := cli.Health(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "extracted rows:   %d\n", h.ExtractedRows)
		fmt.Fprintf(out, "in-flight ops:    %d\n", h.InFlightOps)
		fmt.Fprintf(out, "active conns:     %d\n", h.ActiveConns)
		fmt.Fprintf(out, "admitted/shed:    %d/%d\n", h.Admitted, h.Shed)
		fmt.Fprintf(out, "served:           %d\n", h.Served)
		fmt.Fprintf(out, "checkpoints:      %d\n", h.Checkpoints)
		fmt.Fprintf(out, "wal syncs:        %d\n", h.WALSyncs)
		fmt.Fprintf(out, "indexes loaded:   %d (rebuilt %d)\n", h.IndexesLoaded, h.IndexesRebuilt)
		if h.BufferCapacity > 0 {
			fmt.Fprintf(out, "buffer pool:      %d/%d resident, %.1f%% hit rate (%d hits, %d misses, %d evictions, %d scan-bypass)\n",
				h.BufferResident, h.BufferCapacity, 100*h.BufferHitRate,
				h.BufferHits, h.BufferMisses, h.BufferEvictions, h.BufferScanBypass)
		}
		if h.Shards > 0 {
			fmt.Fprintf(out, "shards:           %d (down: %v)\n", h.Shards, h.ShardsDown)
		}
		fmt.Fprintf(out, "draining/closing: %v/%v\n", h.Draining, h.Closing)
		return nil
	}
	return fmt.Errorf("unknown remote command %q (search|ask|sql|browse|correct|explain|health)", cmd)
}

func printResultSet(out io.Writer, rs *server.ResultSet) {
	if rs == nil {
		return
	}
	fmt.Fprintln(out, strings.Join(rs.Columns, " | "))
	for _, r := range rs.Rows {
		fmt.Fprintln(out, strings.Join(r, " | "))
	}
}
