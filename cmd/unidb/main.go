// Command unidb is the command-line interface of the user layer: it spins
// up the end-to-end system over a synthetic Wikipedia-like corpus and
// exposes the DGE model's modes as subcommands.
//
// Usage:
//
//	unidb [flags] <command> [args...]
//
// Commands:
//
//	generate <uql-program-file|->   run a UQL program (default demo program
//	                                when the argument is omitted)
//	search <keywords...>            keyword search (IR baseline)
//	ask <keywords...>               guided keyword -> structured answer
//	sql <statement>                 direct SQL over the extracted structure
//	browse [facet=value...]         faceted browsing summary
//	sweep                           run the semantic debugger
//	stats                           print system statistics
//	ingest [extractor]              bulk-ingest the whole corpus through the
//	                                cluster and the COPY-style batch loader
//	                                (default extractor: city)
//
// Flags:
//
//	-cities N -people N -filler N -seed N -workers N -corrupt F
//	-data DIR      persist the database under DIR: generate once, then
//	               search/ask/sql against the recovered structure in later
//	               invocations
//	-timeout D     per-command deadline (e.g. 5s); queries abort mid-scan
//	               when it expires
//	-remote ADDR   run the command against a unidbd server at ADDR instead
//	               of an in-process system
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/uql"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "unidb:", err)
		os.Exit(1)
	}
}

const demoProgram = `
EXTRACT temperature, population, founded FROM docs USING city KIND city INTO cityfacts;
STORE cityfacts INTO TABLE extracted;
`

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("unidb", flag.ContinueOnError)
	cities := fs.Int("cities", 50, "synthetic city articles")
	people := fs.Int("people", 20, "synthetic people")
	filler := fs.Int("filler", 30, "synthetic filler articles")
	seed := fs.Int64("seed", 1, "corpus seed")
	workers := fs.Int("workers", 4, "cluster workers")
	corrupt := fs.Float64("corrupt", 0, "fraction of corrupted city articles")
	dataDir := fs.String("data", "", "persist the database under this directory: the extracted structure survives across invocations (crash-safe rdbms + warm snapshots)")
	timeout := fs.Duration("timeout", 0, "per-command deadline (0 = none); expired deadlines abort queries mid-scan")
	remote := fs.String("remote", "", "address of a unidbd server to run the command against (host:port)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command (generate|search|ask|sql|browse|sweep|stats|ingest)")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *remote != "" {
		return runRemote(ctx, *remote, rest[0], rest[1:], out)
	}

	corpus, _ := synth.Generate(synth.Config{
		Seed: *seed, Cities: *cities, People: *people, Filler: *filler,
		MentionsPerPerson: 2, CorruptFrac: *corrupt,
	})
	cfg := core.Config{Corpus: corpus, Workers: *workers}
	var sys *core.System
	if *dataDir != "" {
		s, rep, err := core.OpenDir(*dataDir, cfg, nil)
		if err != nil {
			return err
		}
		sys = s
		if rep.Reopened {
			fmt.Fprintf(out, "(reopened database under %s, warm=%v)\n", *dataDir, rep.Warm)
		}
		defer func() {
			if err := sys.Close(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	} else {
		s, err := core.New(cfg)
		if err != nil {
			return err
		}
		sys = s
	}

	cmd, cmdArgs := rest[0], rest[1:]
	switch cmd {
	case "generate":
		program := demoProgram
		if len(cmdArgs) > 0 && cmdArgs[0] != "-" {
			data, err := os.ReadFile(cmdArgs[0])
			if err != nil {
				return err
			}
			program = string(data)
		}
		plan, err := sys.Generate(context.Background(), program, uql.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "plan:")
		fmt.Fprintln(out, plan.Explain)
		fmt.Fprintf(out, "materialized rows: %d\n", sys.Stats.Counter("uql.store.rows"))
		return nil

	case "search":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		hits, err := sys.KeywordSearch(ctx, strings.Join(cmdArgs, " "), 10)
		if err != nil {
			return err
		}
		for i, h := range hits {
			fmt.Fprintf(out, "%2d. %-40s %.3f  %s\n", i+1, h.Title, h.Score, h.Snippet)
		}
		if len(hits) == 0 {
			fmt.Fprintln(out, "(no hits)")
		}
		return nil

	case "ask":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		ans, err := sys.AskGuided(ctx, strings.Join(cmdArgs, " "), 5)
		if err != nil {
			return err
		}
		if len(ans.Candidates) == 0 {
			fmt.Fprintln(out, "no structured interpretation found; try 'search'")
			return nil
		}
		fmt.Fprintln(out, "candidate structured queries:")
		for i, c := range ans.Candidates {
			fmt.Fprintf(out, "%2d. %-60s (score %.2f)\n", i+1, c.Form(), c.Score)
		}
		fmt.Fprintf(out, "\nexecuting top candidate:\n  %s\n\n", ans.Candidates[0].SQL)
		fmt.Fprint(out, ans.Answer.String())
		fmt.Fprintf(out, "(extraction coverage for %s: %.0f%%)\n",
			ans.Candidates[0].Attribute, ans.Coverage*100)
		return nil

	case "sql":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		rs, err := sys.SQL(ctx, strings.Join(cmdArgs, " "))
		if err != nil {
			return err
		}
		fmt.Fprint(out, rs.String())
		fmt.Fprintf(out, "(plan: %s)\n", rs.Plan)
		return nil

	case "browse":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		b, err := sys.Browse(ctx)
		if err != nil {
			return err
		}
		for _, refinement := range cmdArgs {
			parts := strings.SplitN(refinement, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("browse refinements look like facet=value, got %q", refinement)
			}
			if err := b.Refine(parts[0], parts[1]); err != nil {
				return err
			}
		}
		if p := b.Path(); p != "" {
			fmt.Fprintf(out, "path: %s\n", p)
		}
		fmt.Fprintf(out, "rows: %d\n", len(b.Rows()))
		for _, f := range b.Facets() {
			fmt.Fprintf(out, "facet %s:\n", f.Name)
			for i, v := range f.Values {
				if i >= 8 {
					fmt.Fprintf(out, "  ... %d more\n", len(f.Values)-8)
					break
				}
				fmt.Fprintf(out, "  %-40s %d\n", v.Value, v.Count)
			}
		}
		return nil

	case "sweep":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		violations, err := sys.SweepSuspicious(ctx)
		if err != nil {
			return err
		}
		if len(violations) == 0 {
			fmt.Fprintln(out, "no suspicious values")
			return nil
		}
		for _, v := range violations {
			fmt.Fprintln(out, v.String())
		}
		return nil

	case "stats":
		if err := ensureGenerated(sys); err != nil {
			return err
		}
		for _, line := range sys.Stats.Snapshot() {
			fmt.Fprintln(out, line)
		}
		return nil

	case "ingest":
		extractor := "city"
		if len(cmdArgs) > 0 {
			extractor = cmdArgs[0]
		}
		rep, err := sys.BulkIngest(ctx, extractor, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ingested %d rows from %d docs in %d batches (%d partitions, %d workers, deferred-index=%v)\n",
			rep.Rows, rep.Docs, rep.Batches, rep.Partitions, rep.Workers, rep.Deferred)
		fmt.Fprintf(out, "throughput: %.0f rows/sec\n", rep.RowsPerSec())
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// ensureGenerated lazily runs the demo extraction so exploitation commands
// work out of the box. A database reopened from -data already holds its
// structure and is left alone. Failures propagate: a command that cannot
// have data to run against must exit non-zero, not print over an empty
// table.
func ensureGenerated(sys *core.System) error {
	if sys.Stats.Counter("uql.store.rows") > 0 {
		return nil
	}
	if n, err := sys.ExtractedRows(); err == nil && n > 0 {
		return nil
	}
	if _, err := sys.Generate(context.Background(), demoProgram, uql.Options{}); err != nil {
		return fmt.Errorf("demo generation failed: %w", err)
	}
	return nil
}
