// Command benchrunner regenerates every experiment from DESIGN.md's index
// (E1-E10) and prints the result series as text tables — the repository's
// equivalent of the paper's evaluation section. Run with -quick for a
// smaller parameterization.
//
// Perf modes (skip the experiment suite): -perfout BENCH_PR2.json runs
// the query-path micro-benchmarks and writes a trajectory point;
// -compare BENCH_PR2.json -tolerance 0.25 additionally gates them
// against a committed baseline, exiting nonzero when any tracked bench
// regresses beyond the tolerance — the CI bench-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/perfbench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller parameterizations")
	seed := flag.Int64("seed", 42, "experiment seed")
	only := flag.String("only", "", "run only this experiment id (e.g. E3)")
	perfout := flag.String("perfout", "", "run the query-path micro-benchmarks and write the trajectory JSON (e.g. BENCH_PR2.json); skips the experiment suite")
	compare := flag.String("compare", "", "run the micro-benchmarks and gate them against a committed baseline JSON; exits nonzero when any tracked bench regresses beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slowdown per bench in -compare mode (0.25 = 25%)")
	flag.Parse()

	if *perfout != "" || *compare != "" {
		if err := runPerf(*perfout, *compare, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*quick, *seed, *only); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// runPerf runs the query-path micro-benchmarks, optionally writes the
// trajectory point, and optionally gates against a committed baseline.
func runPerf(outPath, comparePath string, tolerance float64) error {
	rep := perfbench.RunAll()
	for _, r := range rep.Results {
		fmt.Printf("%-40s %12.0f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("catalog speedup (scan-per-query / cached):   %.1fx\n", rep.CatalogSpeedup)
	fmt.Printf("order-by speedup (full sort / top-k):        %.1fx\n", rep.OrderBySpeedup)
	fmt.Printf("index-order speedup (full sort / idx order): %.1fx\n", rep.IndexOrderSpeedup)
	fmt.Printf("warm-start speedup (cold rebuild / load):    %.1fx\n", rep.WarmStartSpeedup)
	fmt.Printf("group-commit speedup (solo / 8 committers):  %.1fx\n", rep.GroupCommitSpeedup)
	fmt.Printf("indexed-reopen speedup (rebuild / idx load): %.1fx\n", rep.IndexedReopenSpeedup)
	fmt.Printf("checkpoint commit overhead (in-flight ckpt):  %.2fx\n", rep.CheckpointCommitOverhead)
	if sl := rep.ServerLoad; sl.Served > 0 {
		fmt.Printf("server load (%d conns, %.1fs): %.0f ops/sec, p50 %.2fms, p99 %.2fms, shed %d\n",
			sl.Conns, sl.Duration, sl.OpsPerSec, sl.P50Ms, sl.P99Ms, sl.Shed)
	}
	if ml := rep.MixedLoad; len(ml.Points) > 0 {
		for _, p := range ml.Points {
			fmt.Printf("mixed read/write (%dR x %dW, %.1fs): readers %.0f ops/sec, writers %.0f ops/sec\n",
				p.Readers, ml.Writers, ml.DurationSec, p.ReaderOpsPerSec, p.WriterOpsPerSec)
		}
		fmt.Printf("mixed-read scaling (8R / 1R aggregate, %d cores): %.2fx\n", ml.Cores, ml.Scaling8x)
		fmt.Printf("mvcc read boost (snapshot / locked, 8R engine):  %.1fx\n", ml.MVCCReadBoost)
	}
	if ig := rep.Ingest; ig.BulkRowsPerSec > 0 {
		fmt.Printf("bulk ingest (%d rows, %d batches): %.0f rows/sec; row-at-a-time %.0f rows/sec (%.1fx)\n",
			ig.Rows, ig.Batches, ig.BulkRowsPerSec, ig.BaselineRowsPerSec, ig.Speedup)
	}
	if sh := rep.ShardLoad; len(sh.Points) > 0 {
		for _, p := range sh.Points {
			fmt.Printf("sharded sweep (%d shards, %dS, %d rows): sharded %.0f ops/sec vs single %.0f ops/sec (%.2fx)\n",
				sh.Shards, p.Sessions, sh.Rows, p.ShardedOpsPerSec, p.SingleOpsPerSec, p.Speedup)
		}
		fmt.Printf("shard read speedup (8S, %d cores): %.2fx\n", sh.Cores, rep.ShardReadSpeedup)
	}
	if outPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if comparePath == "" {
		return nil
	}
	buf, err := os.ReadFile(comparePath)
	if err != nil {
		return err
	}
	var baseline perfbench.Report
	if err := json.Unmarshal(buf, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", comparePath, err)
	}
	regs := perfbench.Compare(baseline, rep, tolerance)
	if len(regs) == 0 {
		fmt.Printf("bench gate: all tracked benches within %.0f%% of %s\n", tolerance*100, comparePath)
		return nil
	}
	for _, g := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %-40s %12.0f -> %12.0f ns/op (%.2fx, tolerance %.2fx)\n",
			g.Name, g.BaselineNs, g.CurrentNs, g.Ratio, 1+tolerance)
	}
	return fmt.Errorf("%d tracked bench(es) regressed beyond %.0f%% of %s", len(regs), tolerance*100, comparePath)
}

func run(quick bool, seed int64, only string) error {
	e1Sizes := []int{200, 1000, 4000}
	e2Sizes := []int{200, 1000, 4000}
	e6Workers := []int{1, 2, 4, 8, 16}
	e6Docs := 2000
	e8Editors := []int{1, 2, 4, 8, 16, 32}
	e8Ops := 200
	e10Docs := 2000
	if quick {
		e1Sizes = []int{100, 400}
		e2Sizes = []int{100, 400}
		e6Workers = []int{1, 2, 4}
		e6Docs = 300
		e8Editors = []int{1, 4, 8}
		e8Ops = 50
		e10Docs = 300
	}

	type experiment struct {
		id  string
		run func() (*experiments.Series, error)
	}
	suite := []experiment{
		{"E1", func() (*experiments.Series, error) { _, s, err := experiments.RunE1(e1Sizes, seed); return s, err }},
		{"E1b", func() (*experiments.Series, error) { return experiments.E1RankingAblation(seed) }},
		{"E2", func() (*experiments.Series, error) { _, s, err := experiments.RunE2(e2Sizes, seed); return s, err }},
		{"E3", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE3([]int{0, 10, 25, 50, 100, 200, 400}, 0.1, seed)
			return s, err
		}},
		{"E4", func() (*experiments.Series, error) { _, s, err := experiments.RunE4(150, seed); return s, err }},
		{"E5", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE5([]int{1, 2, 3, 5, 10}, seed)
			return s, err
		}},
		{"E6", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE6(e6Workers, e6Docs, seed)
			return s, err
		}},
		{"E7", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE7([]float64{0.01, 0.02, 0.05, 0.1, 0.2}, 30, seed)
			return s, err
		}},
		{"E8", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE8(e8Editors, e8Ops, seed)
			return s, err
		}},
		{"E8b", func() (*experiments.Series, error) {
			sizes := []int{1000, 5000, 20000}
			if quick {
				sizes = []int{500, 2000}
			}
			return experiments.E8IndexAblation(sizes)
		}},
		{"E9", func() (*experiments.Series, error) {
			_, s, err := experiments.RunE9([]float64{0.01, 0.05, 0.1, 0.2}, seed)
			return s, err
		}},
		{"E10", func() (*experiments.Series, error) { _, s, err := experiments.RunE10(e10Docs, seed); return s, err }},
	}

	for _, e := range suite {
		if only != "" && e.id != only {
			continue
		}
		s, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(s.String())
	}
	return nil
}
