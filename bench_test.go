package repro

// One benchmark per experiment in DESIGN.md's index (E1-E10). Each bench
// both measures the relevant operation with testing.B and reports the
// experiment's quality metrics via b.ReportMetric, so `go test -bench=.`
// regenerates the full evaluation. cmd/benchrunner prints the same series
// as text tables.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfbench"
	"repro/internal/synth"
	"repro/internal/uql"
)

const benchSeed = 42

// BenchmarkE1StructuredVsKeyword measures the two answering paths of the
// §2 Madison query: per-query keyword search versus the structured
// pipeline's query step (after a one-time extraction).
func BenchmarkE1StructuredVsKeyword(b *testing.B) {
	corpus, truth := synth.Generate(synth.Config{
		Seed: benchSeed, Cities: 100, People: 30, Filler: 80, MentionsPerPerson: 2,
	})
	query := "average March September temperature Madison Wisconsin"

	b.Run("KeywordSearch", func(b *testing.B) {
		sys, err := core.New(core.Config{Corpus: corpus})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if hits, err := sys.KeywordSearch(context.Background(), query, 10); err != nil || len(hits) == 0 {
				b.Fatal("no hits")
			}
		}
		b.ReportMetric(0, "answers/query") // pages, not answers
	})
	b.Run("StructuredQuery", func(b *testing.B) {
		sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Generate(context.Background(), `
			EXTRACT temperature FROM docs USING city KIND city INTO temps;
			STORE temps INTO TABLE extracted;
		`, uql.Options{}); err != nil {
			b.Fatal(err)
		}
		want := truth.CityTruth("Madison, Wisconsin").AvgTemp(2, 8)
		b.ResetTimer()
		var got float64
		for i := 0; i < b.N; i++ {
			ans, err := sys.AskGuided(context.Background(), query, 3)
			if err != nil {
				b.Fatal(err)
			}
			got, _ = core.AverageFromRows(ans.Answer)
		}
		b.StopTimer()
		if got < want-0.01 || got > want+0.01 {
			b.Fatalf("wrong answer: %v, want %v", got, want)
		}
		b.ReportMetric(1, "answers/query")
	})
	b.Run("ExtractOnce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := core.New(core.Config{Corpus: corpus, Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Generate(context.Background(), `
				EXTRACT temperature FROM docs USING city KIND city INTO temps;
				STORE temps INTO TABLE extracted;
			`, uql.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCatalogCache compares the guided-query hot path on the
// incremental catalog cache against the pre-PR1 scan-per-query baseline
// (full catalog scan + reformulation + execution per query). Compare
// ns/op and allocs/op across the two sub-benchmarks; cmd/benchrunner
// -perfout records the same pair in BENCH_PR1.json.
func BenchmarkCatalogCache(b *testing.B) {
	b.Run("AskGuidedCached", perfbench.AskGuidedCached)
	b.Run("AskGuidedScanPerQuery", perfbench.AskGuidedScanPerQuery)
}

// BenchmarkSelectStreaming measures the streaming SELECT path: a
// selective WHERE over 10k rows (rejected tuples are never cloned) and an
// unordered LIMIT that stops the scan early. Watch allocs/op.
func BenchmarkSelectStreaming(b *testing.B) {
	b.Run("Filtered10k", perfbench.SelectFiltered10k)
	b.Run("Limited10k", perfbench.SelectLimited10k)
}

// BenchmarkSortedQueries measures the PR2 sorted-query paths: ORDER BY
// with no LIMIT (full materialize + stable sort — also the pre-PR2 cost
// of ORDER BY+LIMIT), the bounded top-k heap, and the index-order scan.
func BenchmarkSortedQueries(b *testing.B) {
	b.Run("OrderByFullSort10k", perfbench.OrderByFullSort10k)
	b.Run("OrderByTopK10k", perfbench.OrderByTopK10k)
	b.Run("OrderByIndexOrder10k", perfbench.OrderByIndexOrder10k)
}

// BenchmarkWarmStart compares a cold Open's catalog rebuild scan against
// restoring the persisted warm snapshot.
func BenchmarkWarmStart(b *testing.B) {
	b.Run("CatalogColdRebuild", perfbench.CatalogColdRebuild)
	b.Run("WarmStartLoad", perfbench.WarmStartLoad)
}

// BenchmarkDurability measures the on-disk lifecycle costs introduced
// with the crash-safe storage: a durable commit (WAL fsync per
// transaction) and a full close→reopen of a checkpointed 10k-row
// database.
func BenchmarkDurability(b *testing.B) {
	b.Run("DiskCommit", perfbench.DiskCommit)
	b.Run("DiskCommitParallel", perfbench.DiskCommitParallel)
	b.Run("DiskCommitDuringCheckpoint", perfbench.DiskCommitDuringCheckpoint)
	b.Run("DiskReopen", perfbench.DiskReopen)
	b.Run("DiskReopenIndexed", perfbench.DiskReopenIndexed)
}

// BenchmarkBufferPool measures larger-than-RAM serving: a full heap
// sweep through a pool ~10x smaller than the table, and hot point reads
// interleaved with such sweeps (the scan-resistance headline — the
// hot-read ns/op should stay near the in-cache cost, not the pager
// cost, and the reported hit-rate should stay high).
func BenchmarkBufferPool(b *testing.B) {
	b.Run("ScanUnderPressure", perfbench.ScanUnderPressure)
	b.Run("HotPointReadUnderScan", perfbench.HotPointReadUnderScan)
}

// BenchmarkE2IncrementalVsOneShot measures time-to-first-answer.
func BenchmarkE2IncrementalVsOneShot(b *testing.B) {
	cfg := synth.Config{Seed: benchSeed, Cities: 120, People: 40, Filler: 100, MentionsPerPerson: 2}
	b.Run("OneShot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			corpus, _ := synth.Generate(cfg)
			sys, err := core.New(core.Config{Corpus: corpus})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Generate(context.Background(), `
				EXTRACT all FROM docs USING city INTO facts;
				STORE facts INTO TABLE extracted;
			`, uql.Options{}); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.AskGuided(context.Background(), "average temperature Madison Wisconsin", 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IncrementalDemand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			corpus, _ := synth.Generate(cfg)
			sys, err := core.New(core.Config{Corpus: corpus})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.PlanIncremental(context.Background(), "city", []string{"temperature", "population", "founded"}, 16); err != nil {
				b.Fatal(err)
			}
			sys.Demand(context.Background(), "temperature", 10)
			if _, err := sys.ExtractPending(context.Background(), "city", 16); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.AskGuided(context.Background(), "average temperature Madison Wisconsin", 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3FeedbackAccuracy reports entity-resolution F1 as the human
// feedback budget grows.
func BenchmarkE3FeedbackAccuracy(b *testing.B) {
	for _, budget := range []int{0, 25, 100, 400} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				res, _, err := experiments.RunE3([]int{budget}, 0.1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				f1 = res[0].F1
			}
			b.ReportMetric(f1, "F1")
		})
	}
}

// BenchmarkE4MassCollaboration reports F1 per feedback source.
func BenchmarkE4MassCollaboration(b *testing.B) {
	var results []experiments.E4Result
	for i := 0; i < b.N; i++ {
		var err error
		results, _, err = experiments.RunE4(150, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.F1, "F1-"+metricSlug(r.Crowd))
	}
}

// metricSlug turns a label into a whitespace-free benchmark metric unit.
func metricSlug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}

// BenchmarkE5QueryReformulation measures candidate generation latency and
// reports accuracy@k.
func BenchmarkE5QueryReformulation(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, _, err := experiments.RunE5([]int{k}, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				acc = res[0].Accuracy
			}
			b.ReportMetric(acc, "accuracy@k")
		})
	}
}

// BenchmarkE6ClusterSpeedup measures per-document extraction cost and
// reports the simulated cluster makespan (milliseconds) at each worker
// count; see DESIGN.md for why the speedup is simulated over measured
// task costs on a single-CPU host.
func BenchmarkE6ClusterSpeedup(b *testing.B) {
	workerCounts := []int{1, 2, 4, 8, 16}
	var results []experiments.E6Result
	for i := 0; i < b.N; i++ {
		var err error
		results, _, err = experiments.RunE6(workerCounts, 400, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(float64(r.Makespan.Microseconds())/1000, fmt.Sprintf("makespan-ms-w%d", r.Workers))
		b.ReportMetric(r.Speedup, fmt.Sprintf("speedup-w%d", r.Workers))
	}
}

// BenchmarkE7SnapshotStorage measures diff-based snapshot commits and
// reports the space-savings ratio per churn rate.
func BenchmarkE7SnapshotStorage(b *testing.B) {
	for _, churn := range []float64{0.01, 0.05, 0.2} {
		b.Run(fmt.Sprintf("churn=%v", churn), func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				res, _, err := experiments.RunE7([]float64{churn}, 30, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				savings = res[0].Savings
			}
			b.ReportMetric(savings, "savings-x")
		})
	}
}

// BenchmarkE8ConcurrentEditing measures transfer throughput at several
// editor counts with the serializability invariant checked.
func BenchmarkE8ConcurrentEditing(b *testing.B) {
	for _, editors := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("editors=%d", editors), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				res, _, err := experiments.RunE8([]int{editors}, 100, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				if !res[0].Conserved {
					b.Fatal("serializability invariant violated")
				}
				tput = res[0].Throughput
			}
			b.ReportMetric(tput, "transfers/sec")
		})
	}
}

// BenchmarkE9SemanticDebugger measures the sweep and reports detection
// precision/recall at a 10% corruption rate.
func BenchmarkE9SemanticDebugger(b *testing.B) {
	var p, r float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunE9([]float64{0.1}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		p, r = res[0].Precision, res[0].Recall
	}
	b.ReportMetric(p, "precision")
	b.ReportMetric(r, "recall")
}

// BenchmarkE10OptimizerAblation measures the UQL pipeline under each
// optimizer configuration (compare ns/op across sub-benchmarks).
func BenchmarkE10OptimizerAblation(b *testing.B) {
	corpus, _ := synth.Generate(synth.Config{
		Seed: benchSeed, Cities: 150, People: 30, Filler: 150, MentionsPerPerson: 2,
	})
	program := `EXTRACT temperature, population FROM docs USING city MINCONF 0.5 INTO facts;`
	configs := []struct {
		name    string
		opts    uql.Options
		workers int
	}{
		{"FullOptimizer", uql.Options{}, 4},
		{"NoPrefilter", uql.Options{NoPrefilter: true}, 4},
		{"NoEarlyConf", uql.Options{NoEarlyConfFilter: true}, 4},
		{"Sequential", uql.Options{NoParallel: true}, 0},
		{"NoOptimizations", uql.Options{NoPrefilter: true, NoEarlyConfFilter: true, NoParallel: true}, 0},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := core.New(core.Config{Corpus: corpus, Workers: cfg.workers})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Generate(context.Background(), program, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
